"""Columnar replay: the ``vectorized`` kernel's evaluator and collector.

The serial closed-loop, chaos-free, AGGREGATE-mode regime -- the one the
paper's figures are produced in -- admits a much stronger optimization
than a faster event loop: every per-request cost is a pure function of
(request, plan, cost model) that the serving layer already precomputes
(:meth:`~repro.serving.simulator.ClusterSimulation._request_plans`), and
requests are strictly sequential (request ``i+1`` starts at the exact
completion float of request ``i``).  So instead of scheduling ~180 DES
events per request, this module replays whole *chunks* of requests as
array programs:

1. :mod:`repro.serving.columnar` transposes the per-request plans into
   per-chunk numpy columns (one vectorized pass per (net, shard) over
   all requests of the chunk), bit-for-bit equal to the scalar plan
   builder because every elementwise expression keeps the exact
   left-associated float order of the code it mirrors;
2. :class:`SweepEvaluator` walks each request's batch chains
   analytically -- cumulative scalar adds in the exact order the chained
   DES yields would have performed them, *not* ``np.sum`` -- and
   resolves the only genuinely dynamic parts (main-NIC egress
   serialization, the per-shard response NICs, the 4-way IO-thread pool,
   and RPC join maxima) with a tiny per-request event heap.  Every
   accumulation whose operand order is fixed by construction -- the
   per-batch bucket lists (one ordered chain per batch), the per-RPC
   attribution entries (one RPC per entry), the best-RPC selection
   (response-arrival order == heap pop order) and the bounding-batch
   selection (batch-record order == ``(end, batch)`` order) -- is
   computed inline, in the engine's own operand order;
3. only the accumulations whose order *interleaves across chains* --
   the four request-level CPU sums, the per-shard CPU demand, and the
   per-shard sparse op time -- travel as compact record tuples, sorted
   by the reference kernel's ``(time, batch, net, slot-position)``
   recording order and folded through :class:`VectorizedColumns`, an
   :class:`~repro.tracing.aggregate.AggregatingTracer` subclass whose
   attribution math and column writes are the real ones -- so
   ``RunResult.adopt_aggregate`` consumes it unchanged.

Vectorized equivalence
======================

Why this reproduces the chained-yield float order bit for bit:

* **Timing.**  Under the eligibility gate (serial replay, worker pools
  at least ``max_batches`` deep, no chaos) no resource wait ever blocks:
  every ``acquire`` is granted at its request time, so each batch
  chain's timestamps are the running sums ``t += cost`` of its
  precomputed costs -- exactly the floats the DES produces, because the
  DES computes them with the *same* sequential additions.  The dynamic
  exceptions (NIC egress queues, the IO-thread pool) are Lindley
  recursions over heap-ordered events, which is precisely what
  ``SimServer.egress_delay`` and the FIFO resource implement.
* **Draw order.**  The only stochastic input, fabric jitter, is
  consumed through the *simulation's own* :class:`Fabric` stream
  (:meth:`~repro.simulation.network.Fabric.drain_zero_byte_delays`) in
  heap order -- the same ``(time, kickoff-sequence)`` order the DES
  dispatches, with equal-time kickoffs ordered by batch index exactly
  as the engine's scheduling counter orders them.
* **Accumulation order.**  Per-accumulator operand order is what must
  match, not the global interleave: an accumulator only sees its own
  records' terms, so any accumulator fed by exactly one ordered chain
  (a batch's bucket sums, an RPC's entry) can be summed inline, while
  the cross-chain accumulators are folded from records sorted in
  reference recording order (reference record times with structural
  tie-breaks that reproduce the engine's sequence-counter order).
  Durations use the reference wall-stamp expression
  ``(end+skew)-(start+skew)`` whenever any clock skew is configured
  (with zero skew ``end-start`` is bitwise identical: ``+0.0`` is an
  exact no-op on the non-negative timestamps involved).

The regression pin for all of this is
``tests/test_kernel_equivalence.py`` (vectorized == reference on every
paper configuration, all ``RunResult`` columns, serial and parallel).
"""

from __future__ import annotations

import heapq

from repro.simulation.costmodel import CostModel
from repro.simulation.network import Fabric
from repro.simulation.platform import Platform
from repro.tracing.aggregate import AggregatingTracer, _RequestState
from repro.tracing.span import MAIN_SHARD

# Record kinds: a compact re-encoding of the (layer, shard) dispatch of
# AggregatingTracer.record_interval, restricted to the accumulations
# that genuinely need global recording order (request CPU sums and
# per-shard demand).  Kind is a sort tie-break only at jitter-laden
# (measure-zero) time collisions; the numbering puts the shard sparse
# op before the client request serialization (the one same-sort-rank
# pair: both use slot-position ``(k+1)*8+2``), matching the reference
# tie order.
_K_OPS_SLW = 0  # sls_remote (shard): cpu_ops + per-shard op time (dur)
_K_SERDE = 1  # rpc_request_ser / rpc_deser / rpc_resp_ser / rpc_response_deser
_K_OPS = 2  # dense_pre / dense_post / sls_local (main)
_K_SERVICE = 3  # net_sched (main and shard)
_K_SRS_SVC = 4  # rpc_resp_ser fused with rpc_e2e (always sort-adjacent:
#                 same timestamp, consecutive slot-positions)

# One record: (time, key, kind, shard, cpu, dur), where ``key`` packs
# ``batch << 26 | net << 20 | slot-position``.  (time, key) is the
# reference recording order -- the time the reference kernel calls
# record_interval, then structural tie-breaks reproducing the engine's
# scheduling-sequence order at shared timestamps (lockstep batch chains
# resume in batch order; same-chain records at one timestamp keep their
# call positions); with each field in its fixed width, comparing keys
# equals comparing (batch, net, slot-position) tuples.  slot-position
# packs the reference (slot, position) pair as ``(slot+1)*8 + position``
# (main-side records use slot -1, shard-side records slot >= 0, and
# positions stay below 8, so the packed int orders exactly like the
# pair).  ``dur`` is only populated for _K_OPS_SLW (the one folded
# accumulation that needs a duration); every other duration is consumed
# inline by the evaluator.
_Record = tuple[float, int, int, int, float, float]

# Per-request heap events: (time, code, t_client, entry) where ``code``
# packs the dispatch rank and the event's identity as
# ``rank << 41 | batch << 20 | net << 14 | slot``.  With every field in
# its fixed width, integer comparison of two codes equals lexicographic
# comparison of the (rank, batch, net, slot) tuples -- so at equal
# times, RPC kickoffs dispatch before any jitter-laden completion could
# coincide (measure zero), and equal-time events of one rank dispatch
# in batch order, the engine's sequence order for processes spawned at
# the same instant.  The trailing two payload fields are never
# compared: (time, code) is unique per event.  Ranks: 0 = issue (client
# serde done -> egress + outbound network + shard chain), 1 = send
# (shard response serialized -> egress + return network), 2 = arrive
# (response at main -> IO-thread deserialization + join); advancing a
# rank is ``code + _EV_SEND_BIT``.
_EV_SEND_BIT = 1 << 41
_EV_ARRIVE_BIT = 2 << 41


class TargetColumns:
    """Columnar per-(net, shard-slot) RPC costs for one request chunk.

    Mirrors :class:`repro.serving.simulator._ShardLookups` transposed:
    ``rows[i]`` is one prebuilt sequence per request -- ``(active, cst,
    sdes, sov, slw, srs, crd, reqb, respb)``, where every cost field is
    that request's per-batch list (python floats -- identical float64
    bits, scalar access is what the evaluator does) and ``active[b]``
    is truthy for the batches that issue an RPC to this slot (the slot's
    shard index lives on :attr:`shard`, not in the row).  The builders
    assemble the rows once per chunk (one stacked ``tolist`` over the
    transposed cost planes), so the evaluator's per-request setup is
    plain indexing.
    """

    __slots__ = ("shard", "rows")

    def __init__(self, shard: int) -> None:
        self.shard = shard
        self.rows: list[tuple] = []


class NetColumns:
    """Columnar per-net execution plan for one request chunk.

    ``overhead``/``dense`` are ``[request][batch]``; singular plans set
    ``local`` (the fused SLS work) and a scalar ``singular_overhead``,
    distributed plans set ``targets`` (one :class:`TargetColumns` per
    routing slot, in the tenant's routing order).
    """

    __slots__ = ("overhead", "dense", "local", "singular_overhead", "targets")

    def __init__(self) -> None:
        self.overhead: list[list[float]] = []
        self.dense: list[list[float]] = []
        self.local: list[list[float]] = []
        self.singular_overhead = 0.0
        self.targets: list[TargetColumns] = []


class ChunkPlans:
    """One chunk's transposed execution plans (see :class:`NetColumns`)."""

    __slots__ = ("singular", "rids", "nb", "head_deser", "tail_ser", "nets")

    def __init__(
        self,
        singular: bool,
        rids: list[int],
        nb: list[int],
        head_deser: list[float],
        tail_ser: list[float],
        nets: list[NetColumns],
    ) -> None:
        self.singular = singular
        self.rids = rids
        self.nb = nb
        self.head_deser = head_deser
        self.tail_ser = tail_ser
        self.nets = nets


class VectorizedColumns(AggregatingTracer):
    """Aggregate collector fed by sorted record tuples instead of calls.

    The accumulators, the attribution math, the pooled per-request
    state, and the columnar output arrays are all inherited from
    :class:`~repro.tracing.aggregate.AggregatingTracer` --
    :meth:`fold_request` only replaces the per-record *dispatch* (a flat
    integer switch over pre-encoded kinds, covering exactly the
    accumulations whose operand order interleaves across batch chains)
    and then hands the state to the real
    :meth:`~repro.tracing.aggregate.AggregatingTracer.finalize_request`.
    Every ``+=`` below textually mirrors a ``record_interval`` branch;
    the record list arrives sorted in reference recording order, so the
    float-accumulation order is the reference order.
    """

    #: Per-RPC fixed service cost (the rpc_e2e record's cpu, fused into
    #: the _K_SRS_SVC record) and the main request+response handler cpu
    #: (the request_e2e record's cpu, charged after the tail serde).
    #: Set once per run by :class:`SweepEvaluator`.
    service_fixed: float = 0.0
    handler_cpu: float = 0.0

    def fold_request(
        self,
        request_id: int,
        records: list[_Record],
        num_batches: int,
        spans: int,
        head_cpu: float,
        head: float,
        tail_cpu: float,
        tail: float,
        e2e: float,
        rpcs: int,
        best_rpc: list[float] | None,
        best_rpc_dur: float,
        best_batch: int,
        best_batch_dur: float,
        batch_dense: list[float],
        batch_embedded: list[float],
        batch_serde: list[float],
        batch_overhead: list[float],
        batch_sparse: list[float],
    ) -> None:
        """Fold one request's sorted records and attribute its columns.

        The scalar arguments are the single-writer accumulators the
        evaluator computed inline (head/tail/e2e serde windows, the
        best-RPC and bounding-batch selections, the per-batch bucket
        lists -- passed as reusable scratch lists, copied into the
        pooled state).  ``records`` carries only the order-sensitive
        rest: CPU charges in reference recording order.
        """
        pool = self._pool
        if pool:
            state = pool.pop()
            state.reset()
        else:
            state = _RequestState()
        self.spans_recorded += spans

        shard_cpu = state.shard_cpu
        shard_op = state.shard_op
        service_fixed = self.service_fixed
        # The request deserialization is always the first record (its
        # reference time precedes every batch-chain record) and the
        # response serialization + request_e2e always the last two, so
        # their charges bracket the folded loop.
        cpu_serde = 0.0 + head_cpu
        cpu_main = 0.0 + head_cpu
        cpu_ops = 0.0
        cpu_service = 0.0
        # Seed the MAIN slot first so the dict's key order matches the
        # reference (head record inserts it before any shard key).
        shard_cpu[MAIN_SHARD] = 0.0

        shard_get = shard_cpu.get
        op_get = shard_op.get
        # Shard-side records outnumber main-side ones on every
        # multi-shard plan (4 vs ~2.4 per RPC), so they take the first
        # branch; MAIN_SHARD is -1, making ``shard >= 0`` the test.
        for _t, _key, kind, shard, cpu, dur in records:
            if shard >= 0:
                if kind == 1:
                    shard_cpu[shard] = shard_get(shard, 0.0) + cpu
                    cpu_serde += cpu
                elif kind == 0:
                    shard_cpu[shard] = shard_get(shard, 0.0) + cpu
                    cpu_ops += cpu
                    shard_op[shard] = op_get(shard, 0.0) + dur
                elif kind == 4:
                    # rpc_resp_ser (serde cpu) + rpc_e2e (fixed service
                    # cpu) -- always adjacent in reference order, so the
                    # two shard charges fuse into one left-associated
                    # read-modify-write.
                    shard_cpu[shard] = (
                        shard_get(shard, 0.0) + cpu
                    ) + service_fixed
                    cpu_serde += cpu
                    cpu_service += service_fixed
                else:
                    shard_cpu[shard] = shard_get(shard, 0.0) + cpu
                    cpu_service += cpu
            else:
                cpu_main += cpu
                if kind == 1:
                    cpu_serde += cpu
                elif kind == 2:
                    cpu_ops += cpu
                else:
                    cpu_service += cpu

        cpu_serde += tail_cpu
        cpu_main += tail_cpu
        handler_cpu = self.handler_cpu
        cpu_service += handler_cpu
        cpu_main += handler_cpu
        shard_cpu[MAIN_SHARD] = cpu_main

        state.cpu_ops = cpu_ops
        state.cpu_serde = cpu_serde
        state.cpu_service = cpu_service
        state.head_serde = head
        state.tail_serde = tail
        state.e2e = e2e
        state.service_count = 1
        state.num_batches = num_batches
        state.best_batch = best_batch
        state.best_batch_dur = best_batch_dur
        state.rpcs = rpcs
        state.best_rpc = best_rpc
        state.best_rpc_dur = best_rpc_dur
        state.batch_dense.extend(batch_dense)
        state.batch_embedded.extend(batch_embedded)
        state.batch_serde.extend(batch_serde)
        state.batch_overhead.extend(batch_overhead)
        state.batch_sparse.extend(batch_sparse)

        self._live[request_id] = state
        self.finalize_request(request_id)


class SweepEvaluator:
    """Replays plan chunks analytically; carries the jitter stream.

    One evaluator per simulated cluster: it owns the cross-request carry
    state (the fabric's partially-consumed jitter buffer travels inside
    ``fabric`` itself) while all per-request queueing state (main/shard
    egress NICs, the IO-thread pool) is provably quiescent between
    serial requests -- every in-request completion precedes the
    bounding-batch maximum that gates the response path, so fresh
    Lindley state per request is exact.
    """

    __slots__ = (
        "fabric", "main_platform", "sparse_platform", "collector",
        "skew_main", "shard_skews", "no_skew", "main_nic", "sparse_nic",
        "pre_fraction", "request_fixed", "response_fixed", "service_fixed",
        "io_threads", "_delays", "_dpos", "_recs", "_entry_free",
        "_b_dense", "_b_embedded", "_b_serde", "_b_overhead", "_b_sparse",
    )

    def __init__(
        self,
        fabric: Fabric,
        main_platform: Platform,
        sparse_platform: Platform,
        cost_model: CostModel,
        skew_main: float,
        shard_skews: list[float],
        collector: VectorizedColumns,
    ) -> None:
        self.fabric = fabric
        self.main_platform = main_platform
        self.sparse_platform = sparse_platform
        self.collector = collector
        self.skew_main = skew_main
        self.shard_skews = shard_skews
        # Zero skew (the default) makes every ``(end+skew)-(start+skew)``
        # bitwise equal to ``end-start`` (the operands are non-negative,
        # so ``+0.0`` is an exact no-op) -- the replay loops branch to
        # the plain subtraction.
        self.no_skew = skew_main == 0.0 and not any(shard_skews)
        self.main_nic = main_platform.nic_bandwidth
        self.sparse_nic = sparse_platform.nic_bandwidth
        self.pre_fraction = cost_model.dense_pre_fraction
        self.request_fixed = cost_model.request_handler_fixed
        self.response_fixed = cost_model.response_handler_fixed
        self.service_fixed = cost_model.rpc_service_fixed
        self.io_threads = cost_model.io_threads
        collector.service_fixed = cost_model.rpc_service_fixed
        # request_handler_fixed then += response_handler_fixed: one add.
        collector.handler_cpu = (
            cost_model.request_handler_fixed + cost_model.response_handler_fixed
        )
        # Bulk-drained zero-byte fabric delays (see
        # Fabric.drain_zero_byte_delays).  The buffer must outlive chunks:
        # unused tail factors are the *next* chunk's first draws.
        self._delays: list[float] = []
        self._dpos = 0
        # Reusable per-request scratch: the record list, the RPC-entry
        # free list, and the five per-batch bucket lists fold_request
        # copies out of.
        self._recs: list[_Record] = []
        self._entry_free: list[list[float]] = []
        self._b_dense: list[float] = []
        self._b_embedded: list[float] = []
        self._b_serde: list[float] = []
        self._b_overhead: list[float] = []
        self._b_sparse: list[float] = []

    def replay_chunk(self, plans: ChunkPlans, t_start: float) -> float:
        """Replay one chunk serially; returns the final completion time."""
        if plans.singular:
            return self._replay_singular(plans, t_start)
        return self._replay_distributed(plans, t_start)

    # -- singular plans: fully analytic lockstep chains --------------------
    def _replay_singular(self, plans: ChunkPlans, t_start: float) -> float:
        collector = self.collector
        fold = collector.fold_request
        skm = self.skew_main
        no_skew = self.no_skew
        pre_fraction = self.pre_fraction
        request_fixed = self.request_fixed
        response_fixed = self.response_fixed
        nets = plans.nets
        num_nets = len(nets)
        recs = self._recs
        b_dense = self._b_dense
        b_embedded = self._b_embedded
        b_serde = self._b_serde
        b_overhead = self._b_overhead
        b_sparse = self._b_sparse
        now = t_start
        for i in range(len(plans.rids)):
            t0_req = now
            deser = plans.head_deser[i]
            t1 = t0_req + deser
            t2 = t1 + request_fixed
            head = t1 - t0_req if no_skew else (t1 + skm) - (t0_req + skm)
            nb = plans.nb[i]
            del recs[:]
            add = recs.append
            del b_dense[:]
            del b_embedded[:]
            del b_serde[:]
            del b_overhead[:]
            del b_sparse[:]
            b_dense.extend([0.0] * nb)
            b_embedded.extend([0.0] * nb)
            b_serde.extend([head] * nb)
            b_overhead.extend([0.0] * nb)
            b_sparse.extend([0.0] * nb)
            ends = [0.0] * nb
            for b in range(nb):
                t = t2
                for n in range(num_nets):
                    net = nets[n]
                    rkey = (b << 26) | (n << 20)
                    overhead = net.singular_overhead
                    t0 = t
                    t = t0 + overhead
                    add((t, rkey, _K_SERVICE, MAIN_SHARD, overhead, 0.0))
                    b_overhead[b] += (
                        t - t0 if no_skew else (t + skm) - (t0 + skm)
                    )
                    dense = net.dense[i][b]
                    pre = dense * pre_fraction
                    t0 = t
                    t = t0 + pre
                    add((t, rkey | 1, _K_OPS, MAIN_SHARD, pre, 0.0))
                    b_dense[b] += t - t0 if no_skew else (t + skm) - (t0 + skm)
                    work = net.local[i][b]
                    t0 = t
                    t = t0 + work
                    add((t, rkey | 2, _K_OPS, MAIN_SHARD, work, 0.0))
                    # The embedded window wraps the local SLS op: both
                    # buckets receive the same duration float.
                    d = t - t0 if no_skew else (t + skm) - (t0 + skm)
                    b_sparse[b] += d
                    b_embedded[b] += d
                    post = dense - pre
                    t0 = t
                    t = t0 + post
                    add((t, rkey | 5, _K_OPS, MAIN_SHARD, post, 0.0))
                    b_dense[b] += t - t0 if no_skew else (t + skm) - (t0 + skm)
                ends[b] = t
            # Bounding batch: batch records fold in (end, batch) order
            # with a strict > keeping the first-recorded maximum.
            best_batch = -1
            best_batch_dur = -1.0
            for e, b in sorted(zip(ends, range(nb))):
                d = e - t2 if no_skew else (e + skm) - (t2 + skm)
                if d > best_batch_dur:
                    best_batch_dur = d
                    best_batch = b
            last_end = ends[0]
            for b in range(1, nb):
                if ends[b] > last_end:
                    last_end = ends[b]
            ser = plans.tail_ser[i]
            t1 = last_end + ser
            tail = t1 - last_end if no_skew else (t1 + skm) - (last_end + skm)
            t_end = t1 + response_fixed
            e2e = t_end - t0_req if no_skew else (t_end + skm) - (t0_req + skm)
            recs.sort()
            fold(
                plans.rids[i], recs, nb, 3 + nb + 5 * nb * num_nets,
                deser, head, ser, tail, e2e, 0, None, -1.0,
                best_batch, best_batch_dur,
                b_dense, b_embedded, b_serde, b_overhead, b_sparse,
            )
            now = t_end
        return now

    # -- distributed plans: analytic chains + per-request event heap -----
    def _replay_distributed(self, plans: ChunkPlans, t_start: float) -> float:
        collector = self.collector
        fold = collector.fold_request
        fabric = self.fabric
        skm = self.skew_main
        shard_skews = self.shard_skews
        no_skew = self.no_skew
        pre_fraction = self.pre_fraction
        request_fixed = self.request_fixed
        response_fixed = self.response_fixed
        service_fixed = self.service_fixed
        main_nic = self.main_nic
        sparse_nic = self.sparse_nic
        io_threads = self.io_threads
        nets = plans.nets
        num_nets = len(nets)
        # Packed event codes assume these widths; no paper configuration
        # is anywhere near them.
        if num_nets > 64 or any(len(net.targets) > 16384 for net in nets):
            raise ValueError("plan exceeds packed event-code field widths")
        num_shards = 1 + max(
            target.shard for net in nets for target in net.targets
        )
        # Rows no longer carry the shard index -- look it up by slot.
        shard_of = [[target.shard for target in net.targets] for net in nets]
        heappush = heapq.heappush
        heappop = heapq.heappop
        recs = self._recs
        efree = self._entry_free
        b_dense = self._b_dense
        b_embedded = self._b_embedded
        b_serde = self._b_serde
        b_overhead = self._b_overhead
        b_sparse = self._b_sparse
        # Zero-byte fabric delays, drained in bulk from the simulation's
        # own jitter substream (bitwise the per-call values, consumed in
        # the same heap order the DES dispatches); carried across chunks.
        delays = self._delays
        num_delays = len(delays)
        dpos = self._dpos
        now = t_start

        for i in range(len(plans.rids)):
            t0_req = now
            deser = plans.head_deser[i]
            t1 = t0_req + deser
            t2 = t1 + request_fixed
            head = t1 - t0_req if no_skew else (t1 + skm) - (t0_req + skm)
            nb = plans.nb[i]
            del recs[:]
            add = recs.append
            del b_dense[:]
            del b_embedded[:]
            del b_serde[:]
            del b_overhead[:]
            del b_sparse[:]
            b_dense.extend([0.0] * nb)
            b_embedded.extend([0.0] * nb)
            b_serde.extend([head] * nb)
            b_overhead.extend([0.0] * nb)
            b_sparse.extend([0.0] * nb)
            # Per-request row prefetch: the builders pre-assembled one
            # tuple per (net, slot) request holding the per-batch cost
            # lists, so the hot heap branches do one list index per
            # field instead of attribute + [i][b] chains.
            rows = [[tg.rows[i] for tg in nets[n].targets] for n in range(num_nets)]
            ov_i = [net.overhead[i] for net in nets]
            dn_i = [net.dense[i] for net in nets]
            heap: list[tuple[float, int, float, list[float] | None]] = []
            io_free = [0.0] * io_threads
            main_free = 0.0
            shard_free = [0.0] * num_shards
            joins: dict[int, list[float]] = {}
            ends: list[float] = [0.0] * nb
            pend: list[float] = [0.0] * nb
            rpcs = 0
            best_rpc: list[float] | None = None
            best_rpc_dur = -1.0
            groups = 0

            def advance(
                b: int, t: float, n0: int, rows: list = rows,
                ov_i: list = ov_i, dn_i: list = dn_i,
            ) -> None:
                # One batch chain's lockstep walk, from net ``n0`` until
                # it either spawns an RPC group (state parks in ``pend``
                # / ``joins``; the join completion at _EV_ARRIVE resumes
                # it) or runs out of nets (``ends[b]`` is final).
                for n in range(n0, num_nets):
                    rkey = (b << 26) | (n << 20)
                    overhead = ov_i[n][b]
                    t0 = t
                    t = t0 + overhead
                    add((t, rkey, _K_SERVICE, MAIN_SHARD, overhead, 0.0))
                    b_overhead[b] += (
                        t - t0 if no_skew else (t + skm) - (t0 + skm)
                    )
                    dense = dn_i[n][b]
                    pre = dense * pre_fraction
                    t0 = t
                    t = t0 + pre
                    add((t, rkey | 1, _K_OPS, MAIN_SHARD, pre, 0.0))
                    b_dense[b] += t - t0 if no_skew else (t + skm) - (t0 + skm)
                    t_embedded = t
                    spawned = 0
                    code_base = (b << 20) | (n << 14)
                    for k, row in enumerate(rows[n]):
                        if not row[0][b]:
                            continue
                        cst = row[1][b]
                        t0 = t
                        t = t0 + cst
                        add(
                            (t, rkey | (((k + 1) << 3) + 2), _K_SERDE,
                             MAIN_SHARD, cst, 0.0)
                        )
                        b_serde[b] += (
                            t - t0 if no_skew else (t + skm) - (t0 + skm)
                        )
                        heappush(heap, (t, code_base | k, 0.0, None))
                        spawned += 1
                    if spawned:
                        joins[(b << 6) | n] = [float(spawned), -1.0]
                        pend[b] = t_embedded
                        return
                    post = dense - pre
                    t0 = t
                    t = t0 + post
                    add((t, rkey | 5, _K_OPS, MAIN_SHARD, post, 0.0))
                    b_dense[b] += t - t0 if no_skew else (t + skm) - (t0 + skm)
                ends[b] = t

            for b in range(nb):
                advance(b, t2, 0)

            while heap:
                t, code, tcl, entry = heappop(heap)
                if code < _EV_SEND_BIT:  # issue
                    k = code & 16383
                    n = (code >> 14) & 63
                    b = code >> 20
                    row = rows[n][k]
                    # Main egress reservation (Lindley over heap order ==
                    # engine order), then the outbound fabric hop.
                    wire = row[7][b] / main_nic
                    begin = t if t >= main_free else main_free
                    main_free = begin + wire
                    if dpos == num_delays:
                        delays = fabric.drain_zero_byte_delays()
                        num_delays = len(delays)
                        dpos = 0
                    out_delay = ((begin - t) + wire) + delays[dpos]
                    dpos += 1
                    arrive = t + out_delay
                    shard = shard_of[n][k]
                    sdes = row[2][b]
                    x = arrive + sdes
                    x1 = x + service_fixed
                    sov = row[3][b]
                    x2 = x1 + sov
                    slw = row[4][b]
                    x3 = x2 + slw
                    srs = row[5][b]
                    s_done = x3 + srs
                    if no_skew:
                        d_sdes = x - arrive
                        d_sov = x2 - x1
                        d_slw = x3 - x2
                        d_srs = s_done - x3
                        d_svc = s_done - arrive
                    else:
                        sk = shard_skews[shard]
                        d_sdes = (x + sk) - (arrive + sk)
                        d_sov = (x2 + sk) - (x1 + sk)
                        d_slw = (x3 + sk) - (x2 + sk)
                        d_srs = (s_done + sk) - (x3 + sk)
                        d_svc = (s_done + sk) - (arrive + sk)
                    # The RPC's attribution entry, complete at issue
                    # time: each slot is fed only by this RPC's own
                    # spans, in chain order (serde = deser + resp ser).
                    if efree:
                        entry = efree.pop()
                    else:
                        entry = [0.0, 0.0, 0.0, 0.0]
                    entry[0] = d_slw
                    entry[1] = d_sdes + d_srs
                    entry[2] = d_sov
                    entry[3] = d_svc
                    rk = ((b << 26) | (n << 20)) + ((k + 1) << 3)
                    add((x, rk, _K_SERDE, shard, sdes, 0.0))
                    add((x2, rk + 1, _K_SERVICE, shard, sov, 0.0))
                    add((x3, rk + 2, _K_OPS_SLW, shard, slw, d_slw))
                    add((s_done, rk + 3, _K_SRS_SVC, shard, srs, 0.0))
                    heappush(heap, (s_done, code + _EV_SEND_BIT, t, entry))
                elif code < _EV_ARRIVE_BIT:  # send
                    k = code & 16383
                    n = (code >> 14) & 63
                    b = (code >> 20) & 2097151
                    shard = shard_of[n][k]
                    wire = rows[n][k][8][b] / sparse_nic
                    free = shard_free[shard]
                    begin = t if t >= free else free
                    shard_free[shard] = begin + wire
                    if dpos == num_delays:
                        delays = fabric.drain_zero_byte_delays()
                        num_delays = len(delays)
                        dpos = 0
                    back_delay = ((begin - t) + wire) + delays[dpos]
                    dpos += 1
                    arrive = t + back_delay
                    heappush(heap, (arrive, code + _EV_SEND_BIT, tcl, entry))
                else:  # arrive: FIFO IO-thread pool, then the join
                    k = code & 16383
                    n = (code >> 14) & 63
                    b = (code >> 20) & 2097151
                    # FIFO IO-thread pool: the earliest-free thread
                    # serves next.  min + index over the tiny pool list
                    # beat the two heap sifts; at a tie any thread
                    # yields the same begin float.
                    free = min(io_free)
                    begin = t if t >= free else free
                    crd = rows[n][k][6][b]
                    done = begin + crd
                    io_free[io_free.index(free)] = done
                    add(
                        (done, ((b << 26) | (n << 20)) + ((k + 1) << 3) + 6,
                         _K_SERDE, MAIN_SHARD, crd, 0.0)
                    )
                    # rpc_outstanding: arrival order == heap pop order,
                    # strict > keeps the first-recorded maximum.
                    d = t - tcl if no_skew else (t + skm) - (tcl + skm)
                    rpcs += 1
                    if d > best_rpc_dur:
                        if best_rpc is not None:
                            efree.append(best_rpc)
                        best_rpc_dur = d
                        best_rpc = entry
                    else:
                        assert entry is not None
                        efree.append(entry)
                    join = joins[(b << 6) | n]
                    join[0] -= 1.0
                    if done > join[1]:
                        join[1] = done
                    if join[0] == 0.0:
                        del joins[(b << 6) | n]
                        groups += 1
                        # Resume the parked chain: the embedded window
                        # closes at the join maximum, the dense post
                        # half runs (its operands recompute to the same
                        # floats the pre half derived them from), and
                        # the walk continues from the next net.
                        t = join[1]
                        t_embedded = pend[b]
                        b_embedded[b] += (
                            t - t_embedded
                            if no_skew
                            else (t + skm) - (t_embedded + skm)
                        )
                        dense = dn_i[n][b]
                        pre = dense * pre_fraction
                        post = dense - pre
                        t0 = t
                        t = t0 + post
                        add(
                            (t, (b << 26) | (n << 20) | 5, _K_OPS,
                             MAIN_SHARD, post, 0.0)
                        )
                        b_dense[b] += (
                            t - t0 if no_skew else (t + skm) - (t0 + skm)
                        )
                        n += 1
                        if n < num_nets:
                            advance(b, t, n)
                        else:
                            ends[b] = t

            best_batch = -1
            best_batch_dur = -1.0
            for e, b in sorted(zip(ends, range(nb))):
                d = e - t2 if no_skew else (e + skm) - (t2 + skm)
                if d > best_batch_dur:
                    best_batch_dur = d
                    best_batch = b
            last_end = ends[0]
            for b in range(1, nb):
                if ends[b] > last_end:
                    last_end = ends[b]
            ser = plans.tail_ser[i]
            t1 = last_end + ser
            tail = t1 - last_end if no_skew else (t1 + skm) - (last_end + skm)
            t_end = t1 + response_fixed
            e2e = t_end - t0_req if no_skew else (t_end + skm) - (t0_req + skm)
            recs.sort()
            fold(
                plans.rids[i], recs, nb,
                3 + nb + 3 * nb * num_nets + groups + 8 * rpcs,
                deser, head, ser, tail, e2e, rpcs, best_rpc, best_rpc_dur,
                best_batch, best_batch_dur,
                b_dense, b_embedded, b_serde, b_overhead, b_sparse,
            )
            # The winning entry was consumed by finalize inside fold;
            # reclaim it for the next request.
            if best_rpc is not None:
                efree.append(best_rpc)
            now = t_end
        self._delays = delays
        self._dpos = dpos
        return now

"""Cross-layer attribution of latency and CPU time (paper Section IV-B).

Turns one request's spans into the three breakdowns the paper reports:

* **E2E latency stack** (Figure 8a): Dense Ops / Embedded Portion /
  RPC Ser-De / RPC Service Function / Caffe2 Net Overhead, measured at the
  main shard.  Batches execute in parallel, so attribution follows the
  *bounding batch* (the longest one), plus request-level serde/handler
  work; residual time (queueing, handler fixed costs) lands in the
  service-function bucket, matching the paper's definition ("any other
  time strictly not spent in a Caffe2 net or serialization").
* **Embedded-portion stack** (Figure 8b): for the *slowest outstanding
  RPC* of the request, Network Latency is derived as
  ``outstanding_at_main - sparse_shard_e2e`` -- a difference of two
  same-server durations, so per-server clock skew cancels exactly
  (Section IV-B).
* **CPU-time stack** (Figure 9): aggregate core time across all shards in
  Caffe2 Ops / RPC Ser-De / service-overhead buckets.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.core.types import OpCategory
from repro.tracing.span import MAIN_SHARD, Layer, Span

# Bucket names match the paper's figure legends.
DENSE_OPS = "Dense Ops"
EMBEDDED_PORTION = "Embedded Portion"
RPC_SERDE = "RPC Ser/De"
RPC_SERVICE = "RPC Service Function"
NET_OVERHEAD = "Caffe2 Net Overhead"
SPARSE_OPS = "Caffe2 Sparse Ops"
NETWORK_LATENCY = "Network Latency"
CPU_OPS = "Caffe2 Ops"
CPU_SERVICE = "FbThrift/Caffe2 Service Overhead"

E2E_BUCKETS = (DENSE_OPS, EMBEDDED_PORTION, RPC_SERDE, RPC_SERVICE, NET_OVERHEAD)
EMBEDDED_BUCKETS = (SPARSE_OPS, RPC_SERDE, RPC_SERVICE, NET_OVERHEAD, NETWORK_LATENCY)
CPU_BUCKETS = (CPU_OPS, RPC_SERDE, CPU_SERVICE)


class AttributionError(ValueError):
    """Raised when a request's spans are structurally incomplete."""


@dataclass(slots=True)
class RequestAttribution:
    """Fully attributed measurements for one request."""

    request_id: int
    e2e: float
    num_batches: int
    rpcs: int
    cpu_total: float
    cpu_stack: dict[str, float]
    latency_stack: dict[str, float]
    embedded_stack: dict[str, float]
    sparse_op_cpu: float = 0.0
    dense_op_cpu: float = 0.0
    per_shard_cpu: dict[int, float] = field(default_factory=dict)
    """Core-seconds by shard (MAIN_SHARD = -1 for the main shard)."""
    per_shard_op_time: dict[int, float] = field(default_factory=dict)
    per_shard_net_op_time: dict[tuple[int, str], float] = field(default_factory=dict)

    @property
    def embedded_total(self) -> float:
        return sum(self.embedded_stack.values())


def attribute_request(spans: list[Span]) -> RequestAttribution:
    """Post-process one request's trace into the paper's breakdowns."""
    if not spans:
        raise AttributionError("no spans for request")
    request_id = spans[0].request_id

    service = _single(spans, Layer.SERVICE, shard=MAIN_SHARD)
    e2e = service.duration

    batches = [s for s in spans if s.layer is Layer.BATCH]
    if not batches:
        raise AttributionError(f"request {request_id}: no batch spans")
    bounding = max(batches, key=lambda s: s.duration)

    latency_stack = _e2e_stack(spans, bounding.batch, e2e)
    embedded_stack = _embedded_stack(spans, bounding.batch)
    cpu_stack = _cpu_stack(spans)

    per_shard: dict[int, float] = defaultdict(float)
    per_shard_net: dict[tuple[int, str], float] = defaultdict(float)
    per_shard_cpu: dict[int, float] = defaultdict(float)
    sparse_op_cpu = dense_op_cpu = 0.0
    for span in spans:
        per_shard_cpu[span.shard] += span.cpu_time
        if span.layer is not Layer.OPERATOR:
            continue
        if span.category is OpCategory.SPARSE:
            sparse_op_cpu += span.cpu_time
        else:
            dense_op_cpu += span.cpu_time
        if span.shard != MAIN_SHARD:
            per_shard[span.shard] += span.duration
            per_shard_net[(span.shard, span.net)] += span.duration

    return RequestAttribution(
        request_id=request_id,
        e2e=e2e,
        num_batches=len(batches),
        rpcs=sum(1 for s in spans if s.layer is Layer.RPC_CLIENT),
        cpu_total=sum(cpu_stack.values()),
        cpu_stack=cpu_stack,
        latency_stack=latency_stack,
        embedded_stack=embedded_stack,
        sparse_op_cpu=sparse_op_cpu,
        dense_op_cpu=dense_op_cpu,
        per_shard_cpu=dict(per_shard_cpu),
        per_shard_op_time=dict(per_shard),
        per_shard_net_op_time=dict(per_shard_net),
    )


def _single(spans: list[Span], layer: Layer, shard: int) -> Span:
    matches = [s for s in spans if s.layer is layer and s.shard == shard]
    if len(matches) != 1:
        raise AttributionError(
            f"expected exactly one {layer.value} span on shard {shard}, "
            f"found {len(matches)}"
        )
    return matches[0]


def _e2e_stack(spans: list[Span], bounding_batch: int, e2e: float) -> dict[str, float]:
    stack = {bucket: 0.0 for bucket in E2E_BUCKETS}
    for span in spans:
        if span.shard != MAIN_SHARD:
            continue
        in_bounding = span.batch == bounding_batch
        request_level = span.batch is None
        if span.layer is Layer.OPERATOR and in_bounding:
            if span.category is not OpCategory.SPARSE:
                stack[DENSE_OPS] += span.duration
            # Local sparse ops are covered by their EMBEDDED span.
        elif span.layer is Layer.EMBEDDED and in_bounding:
            stack[EMBEDDED_PORTION] += span.duration
        elif span.layer is Layer.SERDE and (in_bounding or request_level):
            if span.rpc_id is None:
                # Response deser runs on IO threads inside the embedded
                # window (already covered by the EMBEDDED span).
                stack[RPC_SERDE] += span.duration
        elif span.layer is Layer.NET_OVERHEAD and in_bounding:
            stack[NET_OVERHEAD] += span.duration
    accounted = sum(stack.values())
    stack[RPC_SERVICE] = max(0.0, e2e - accounted)
    return stack


def _embedded_stack(spans: list[Span], bounding_batch: int) -> dict[str, float]:
    stack = {bucket: 0.0 for bucket in EMBEDDED_BUCKETS}
    clients = [s for s in spans if s.layer is Layer.RPC_CLIENT]
    if not clients:
        # Singular: the embedded portion is the bounding batch's local
        # sparse ops themselves.
        stack[SPARSE_OPS] = sum(
            s.duration
            for s in spans
            if s.layer is Layer.OPERATOR
            and s.shard == MAIN_SHARD
            and s.category is OpCategory.SPARSE
            and s.batch == bounding_batch
        )
        return stack

    bounding = max(clients, key=lambda s: s.duration)
    shard_spans = [s for s in spans if s.rpc_id == bounding.rpc_id and s.shard != MAIN_SHARD]
    shard_service = next(s for s in shard_spans if s.layer is Layer.SERVICE)
    ops = sum(s.duration for s in shard_spans if s.layer is Layer.OPERATOR)
    serde = sum(s.duration for s in shard_spans if s.layer is Layer.SERDE)
    overhead = sum(s.duration for s in shard_spans if s.layer is Layer.NET_OVERHEAD)

    stack[SPARSE_OPS] = ops
    stack[RPC_SERDE] = serde
    stack[NET_OVERHEAD] = overhead
    stack[RPC_SERVICE] = max(0.0, shard_service.duration - ops - serde - overhead)
    # Skew-safe: both terms are same-server durations (Section IV-B).
    stack[NETWORK_LATENCY] = max(0.0, bounding.duration - shard_service.duration)
    return stack


def _cpu_stack(spans: list[Span]) -> dict[str, float]:
    stack = {bucket: 0.0 for bucket in CPU_BUCKETS}
    for span in spans:
        if span.layer is Layer.OPERATOR:
            stack[CPU_OPS] += span.cpu_time
        elif span.layer is Layer.SERDE:
            stack[RPC_SERDE] += span.cpu_time
        elif span.layer in (Layer.SERVICE, Layer.NET_OVERHEAD):
            stack[CPU_SERVICE] += span.cpu_time
    return stack

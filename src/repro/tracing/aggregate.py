"""Span-free aggregate tracing: the sweep fast path (ROADMAP perf rung).

Full tracing materializes ~180 :class:`~repro.tracing.span.Span` objects
per request and attributes them post-hoc with several passes per request
(:func:`~repro.tracing.attribution.attribute_request`).  That is the right
tool for per-shard breakdowns (paper Figures 10-12) and trace rendering,
but it dominates the cost of large configuration sweeps that only consume
the per-request E2E/CPU/stack *columns*.

:class:`AggregatingTracer` is the span-free alternative: it implements the
same ``record_interval`` entry point the simulator drives, but folds each
interval straight into per-request bucket accumulators (ring-buffered
per in-flight request and reused) and, on request completion, attributes
those sums directly into preallocated columnar numpy arrays -- the exact
columns :class:`~repro.experiments.runner.RunResult` stores.  No ``Span``
is ever constructed and no per-request dataclass is retained.

Equivalence contract (regression-tested): for any simulation, AGGREGATE
mode produces **bit-identical** ``e2e``/``cpu``/stack columns to FULL
mode.  Every accumulation below therefore mirrors the float-operation
*order* of ``attribute_request``:

* intervals are folded in recording order, which is the order
  ``attribute_request`` iterates the span list;
* the bounding batch / bounding RPC use strict ``>`` running maxima,
  matching ``max()``'s first-of-equals tie-break over recording order;
* request-level serde seeds each per-batch serde accumulator (the request
  deserialization is recorded before any batch span) and the response
  serialization is added last, reproducing the interleaved order of the
  full pass;
* residuals use the same ``max(0.0, ...)`` clamps on identically
  associated sums.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.core.types import OpCategory
from repro.tracing.attribution import (
    CPU_BUCKETS,
    E2E_BUCKETS,
    EMBEDDED_BUCKETS,
    AttributionError,
)
from repro.tracing.span import MAIN_SHARD, Layer


class TraceMode(enum.Enum):
    """How much trace detail a simulation records."""

    FULL = "full"
    """Materialize every span; per-request attributions are retained, so
    per-shard breakdowns and trace rendering are available."""

    AGGREGATE = "aggregate"
    """Span-free: the per-request E2E/CPU/stack columns plus the per-shard
    CPU-demand and sparse-op-time columns are produced (bit-identical to
    FULL).  Only per-(shard, net) breakdowns (Figure 10) still require
    FULL's retained attributions."""


# Hot-loop locals: enum attribute lookups are not free in CPython.
_SERDE = Layer.SERDE
_OPERATOR = Layer.OPERATOR
_NET_OVERHEAD = Layer.NET_OVERHEAD
_RPC_CLIENT = Layer.RPC_CLIENT
_EMBEDDED = Layer.EMBEDDED
_BATCH = Layer.BATCH
_SERVICE = Layer.SERVICE
_SPARSE = OpCategory.SPARSE

# Indices into a live-RPC accumulator entry [ops, serde, overhead, service].
_R_OPS, _R_SERDE, _R_OVERHEAD, _R_SERVICE = 0, 1, 2, 3


class _RequestState:
    """Bucket accumulators for one in-flight request (pooled/reused)."""

    __slots__ = (
        "cpu_ops",
        "cpu_serde",
        "cpu_service",
        "shard_cpu",
        "shard_op",
        "head_serde",
        "tail_serde",
        "e2e",
        "service_count",
        "num_batches",
        "best_batch",
        "best_batch_dur",
        "batch_dense",
        "batch_embedded",
        "batch_serde",
        "batch_overhead",
        "batch_sparse",
        "rpcs",
        "best_rpc",
        "best_rpc_dur",
        "rpc_live",
        "rpc_free",
    )

    def __init__(self):
        self.shard_cpu: dict[int, float] = {}
        self.shard_op: dict[int, float] = {}
        self.batch_dense: list[float] = []
        self.batch_embedded: list[float] = []
        self.batch_serde: list[float] = []
        self.batch_overhead: list[float] = []
        self.batch_sparse: list[float] = []
        self.rpc_live: dict[int, list[float]] = {}
        self.rpc_free: list[list[float]] = []
        self.reset()

    def reset(self) -> None:
        self.shard_cpu.clear()
        self.shard_op.clear()
        self.cpu_ops = 0.0
        self.cpu_serde = 0.0
        self.cpu_service = 0.0
        self.head_serde = 0.0
        self.tail_serde = 0.0
        self.e2e = 0.0
        self.service_count = 0
        self.num_batches = 0
        self.best_batch = -1
        self.best_batch_dur = -1.0
        del self.batch_dense[:]
        del self.batch_embedded[:]
        del self.batch_serde[:]
        del self.batch_overhead[:]
        del self.batch_sparse[:]
        self.rpcs = 0
        self.best_rpc = None
        self.best_rpc_dur = -1.0
        self.rpc_live.clear()

    def grow_batches(self, index: int) -> None:
        """Ensure per-batch accumulators cover batch ``index``.

        New serde slots seed with the request-level head serde (request
        deserialization precedes every batch span), so the bounding
        batch's final serde sum reproduces the full pass's interleaved
        addition order: head, then that batch's serde spans, then tail.
        """
        head = self.head_serde
        while len(self.batch_dense) <= index:
            self.batch_dense.append(0.0)
            self.batch_embedded.append(0.0)
            self.batch_serde.append(head)
            self.batch_overhead.append(0.0)
            self.batch_sparse.append(0.0)

    def rpc_entry(self, rpc_id: int) -> list[float]:
        entry = self.rpc_live.get(rpc_id)
        if entry is None:
            if self.rpc_free:
                entry = self.rpc_free.pop()
                entry[0] = entry[1] = entry[2] = entry[3] = 0.0
            else:
                entry = [0.0, 0.0, 0.0, 0.0]
            self.rpc_live[rpc_id] = entry
        return entry


class AggregatingTracer:
    """Accumulates bucket sums per request; emits columnar attributions.

    Drop-in replacement for :class:`~repro.tracing.span.Tracer` on the
    simulator side (same ``record_interval`` signature, same drain/assert
    API).  Completion is driven by :meth:`finalize_request`, which plays
    the role ``pop_request`` + ``attribute_request`` play in FULL mode:
    it attributes the request's accumulated sums into the next row of the
    preallocated output columns and recycles the in-flight state.
    """

    def __init__(self, expected_requests: int = 0):
        self.spans_recorded = 0
        self._live: dict[int, _RequestState] = {}
        self._pool: list[_RequestState] = []
        #: Optional request-id -> workload-index mapping (any integer
        #: indexable, e.g. a ``MixedStream.workload_ids`` array whose
        #: positions are request ids).  ``None`` labels every request as
        #: workload 0 -- the single-workload suites.
        self.workload_ids = None
        #: Optional request-id -> ``[degraded, retries]`` mapping (the
        #: chaos runtime's flags dict).  ``None`` -- the healthy case --
        #: leaves the status/degraded/retries columns all-zero.
        self.chaos_flags = None
        #: Optional request-id -> ``[attempts, hedged, deadline_exceeded]``
        #: mapping (the resilience runtime's flags dict).  ``None`` -- no
        #: active policy -- leaves those columns all-zero.
        self.resilience_flags = None
        # One-entry lookup cache: spans arrive in per-request bursts
        # (serial replay is a 100% hit), and the dict probe per span is
        # measurable at millions of spans per sweep.
        self._last_id: int | None = None
        self._last_state: _RequestState | None = None
        capacity = max(int(expected_requests), 16)
        self._count = 0
        self._e2e = np.empty(capacity)
        self._cpu = np.empty(capacity)
        self._workload = np.zeros(capacity, dtype=np.int64)
        # Chaos columns (request id, status, degraded, retries): rows are
        # in completion order, and under fault injection completion order
        # is not request order, so the id column is what maps a row back
        # to its arrival time for availability timelines.
        self._rid = np.empty(capacity, dtype=np.int64)
        self._status = np.zeros(capacity, dtype=np.int64)
        self._degraded = np.zeros(capacity, dtype=np.int64)
        self._retries = np.zeros(capacity, dtype=np.int64)
        # Resilience columns (attempts, hedged, deadline_exceeded), all
        # zero without an active policy.
        self._attempts = np.zeros(capacity, dtype=np.int64)
        self._hedged = np.zeros(capacity, dtype=np.int64)
        self._deadline = np.zeros(capacity, dtype=np.int64)
        self._stack_cols: dict[tuple[str, str], np.ndarray] = {
            (kind, bucket): np.empty(capacity)
            for kind, buckets in (
                ("latency", E2E_BUCKETS),
                ("embedded", EMBEDDED_BUCKETS),
                ("cpu", CPU_BUCKETS),
            )
            for bucket in buckets
        }
        # Per-shard demand columns, keyed by shard index (MAIN_SHARD = -1).
        # Created lazily on first touch and zero-filled: a request that
        # never reaches a shard contributes exactly 0.0 to its column.
        self._shard_cpu_cols: dict[int, np.ndarray] = {}
        self._shard_op_cols: dict[int, np.ndarray] = {}

    # -- recording (hot path) ---------------------------------------------
    def record_interval(
        self,
        request_id: int,
        shard: int,
        server,
        layer: Layer,
        name: str,
        start: float,
        end: float,
        cpu: float = 0.0,
        category: OpCategory | None = None,
        net: str | None = None,
        batch: int | None = None,
        rpc_id: int | None = None,
    ) -> None:
        if request_id == self._last_id:
            state = self._last_state
        else:
            state = self._live.get(request_id)
            if state is None:
                if self._pool:
                    state = self._pool.pop()
                    state.reset()
                else:
                    state = _RequestState()
                self._live[request_id] = state
            self._last_id = request_id
            self._last_state = state
        # Durations from wall-stamped endpoints, exactly as a Span stores
        # them -- with nonzero skew, (end+skew)-(start+skew) can differ
        # from end-start in the last ulp, and FULL mode sees the former.
        skew = server.clock_skew
        duration = (end + skew) - (start + skew)
        if duration < 0.0:
            raise ValueError(f"span {name}: end {end} precedes start {start}")
        self.spans_recorded += 1
        # Per-shard CPU demand, accumulated in recording order -- the same
        # float-addition order attribute_request uses over the span list,
        # so the per-shard columns are bit-identical to FULL mode.
        shard_cpu = state.shard_cpu
        shard_cpu[shard] = shard_cpu.get(shard, 0.0) + cpu

        if layer is _SERDE:
            state.cpu_serde += cpu
            if shard == MAIN_SHARD:
                if rpc_id is None:
                    if batch is not None:
                        if batch >= len(state.batch_serde):
                            state.grow_batches(batch)
                        state.batch_serde[batch] += duration
                    elif state.batch_dense:
                        state.tail_serde += duration
                    else:
                        state.head_serde += duration
                # else: RPC response deser on IO threads -- covered by the
                # EMBEDDED window in the E2E stack (cpu counted above).
            else:
                state.rpc_entry(rpc_id)[_R_SERDE] += duration
        elif layer is _OPERATOR:
            state.cpu_ops += cpu
            if shard == MAIN_SHARD:
                if batch is not None:
                    if batch >= len(state.batch_dense):
                        state.grow_batches(batch)
                    if category is _SPARSE:
                        state.batch_sparse[batch] += duration
                    else:
                        state.batch_dense[batch] += duration
            else:
                state.rpc_entry(rpc_id)[_R_OPS] += duration
                shard_op = state.shard_op
                shard_op[shard] = shard_op.get(shard, 0.0) + duration
        elif layer is _NET_OVERHEAD:
            state.cpu_service += cpu
            if shard == MAIN_SHARD:
                if batch is not None:
                    if batch >= len(state.batch_overhead):
                        state.grow_batches(batch)
                    state.batch_overhead[batch] += duration
            else:
                state.rpc_entry(rpc_id)[_R_OVERHEAD] += duration
        elif layer is _RPC_CLIENT:
            state.rpcs += 1
            entry = state.rpc_live.pop(rpc_id, None)
            if entry is None:
                entry = [0.0, 0.0, 0.0, 0.0]
            # Strict > keeps the first-recorded maximum, matching max()
            # over the span list in recording order.
            if duration > state.best_rpc_dur:
                if state.best_rpc is not None:
                    state.rpc_free.append(state.best_rpc)
                state.best_rpc_dur = duration
                state.best_rpc = entry
            else:
                state.rpc_free.append(entry)
        elif layer is _EMBEDDED:
            if batch is not None:
                if batch >= len(state.batch_embedded):
                    state.grow_batches(batch)
                state.batch_embedded[batch] += duration
        elif layer is _BATCH:
            state.num_batches += 1
            if duration > state.best_batch_dur:
                state.best_batch_dur = duration
                state.best_batch = batch
        elif layer is _SERVICE:
            state.cpu_service += cpu
            if shard == MAIN_SHARD:
                state.service_count += 1
                state.e2e = duration
            else:
                state.rpc_entry(rpc_id)[_R_SERVICE] = duration

    # -- columnar attribution (request completion) ------------------------
    def finalize_request(self, request_id: int) -> None:
        """Attribute one completed request's sums into the output columns."""
        state = self._live.pop(request_id, None)
        if state is None:
            raise AttributionError("no spans for request")
        if request_id == self._last_id:
            self._last_id = None
            self._last_state = None
        try:
            if state.service_count != 1:
                raise AttributionError(
                    f"expected exactly one service span on shard {MAIN_SHARD}, "
                    f"found {state.service_count}"
                )
            if state.num_batches == 0:
                raise AttributionError(f"request {request_id}: no batch spans")

            bounding = state.best_batch
            dense = state.batch_dense[bounding]
            embedded = state.batch_embedded[bounding]
            serde = state.batch_serde[bounding] + state.tail_serde
            overhead = state.batch_overhead[bounding]
            e2e = state.e2e
            # Same association as summing the stack dict in bucket order
            # (RPC Service Function still zero at that point).
            accounted = 0.0 + dense + embedded + serde + 0.0 + overhead
            rpc_service = max(0.0, e2e - accounted)

            if state.rpcs == 0:
                # Singular: the embedded portion is the bounding batch's
                # local sparse ops themselves.
                emb_sparse = state.batch_sparse[bounding]
                emb_serde = emb_service = emb_overhead = emb_network = 0.0
            else:
                best = state.best_rpc
                emb_sparse = best[_R_OPS]
                emb_serde = best[_R_SERDE]
                emb_overhead = best[_R_OVERHEAD]
                shard_service = best[_R_SERVICE]
                emb_service = max(
                    0.0, shard_service - emb_sparse - emb_serde - emb_overhead
                )
                # Skew-safe: both terms are same-server durations.
                emb_network = max(0.0, state.best_rpc_dur - shard_service)

            cpu_ops = state.cpu_ops
            cpu_serde = state.cpu_serde
            cpu_service = state.cpu_service
            cpu_total = 0 + cpu_ops + cpu_serde + cpu_service

            index = self._count
            if index == len(self._e2e):
                self._grow(2 * index)
            self._e2e[index] = e2e
            self._cpu[index] = cpu_total
            workload_ids = self.workload_ids
            self._workload[index] = (
                0 if workload_ids is None else int(workload_ids[request_id])
            )
            self._rid[index] = request_id
            chaos_flags = self.chaos_flags
            if chaos_flags is not None:
                flags = chaos_flags.get(request_id)
                if flags is not None:
                    degraded, retried = flags
                    self._status[index] = 1 if degraded else 0
                    self._degraded[index] = degraded
                    self._retries[index] = retried
            resilience_flags = self.resilience_flags
            if resilience_flags is not None:
                rflags = resilience_flags.get(request_id)
                if rflags is not None:
                    attempts, hedged, deadline_exceeded = rflags
                    self._attempts[index] = attempts
                    self._hedged[index] = hedged
                    self._deadline[index] = deadline_exceeded
            cols = self._stack_cols
            cols["latency", E2E_BUCKETS[0]][index] = dense
            cols["latency", E2E_BUCKETS[1]][index] = embedded
            cols["latency", E2E_BUCKETS[2]][index] = serde
            cols["latency", E2E_BUCKETS[3]][index] = rpc_service
            cols["latency", E2E_BUCKETS[4]][index] = overhead
            cols["embedded", EMBEDDED_BUCKETS[0]][index] = emb_sparse
            cols["embedded", EMBEDDED_BUCKETS[1]][index] = emb_serde
            cols["embedded", EMBEDDED_BUCKETS[2]][index] = emb_service
            cols["embedded", EMBEDDED_BUCKETS[3]][index] = emb_overhead
            cols["embedded", EMBEDDED_BUCKETS[4]][index] = emb_network
            cols["cpu", CPU_BUCKETS[0]][index] = cpu_ops
            cols["cpu", CPU_BUCKETS[1]][index] = cpu_serde
            cols["cpu", CPU_BUCKETS[2]][index] = cpu_service
            capacity = len(self._e2e)
            shard_cpu_cols = self._shard_cpu_cols
            for shard, value in state.shard_cpu.items():
                col = shard_cpu_cols.get(shard)
                if col is None:
                    col = shard_cpu_cols[shard] = np.zeros(capacity)
                col[index] = value
            shard_op_cols = self._shard_op_cols
            for shard, value in state.shard_op.items():
                col = shard_op_cols.get(shard)
                if col is None:
                    col = shard_op_cols[shard] = np.zeros(capacity)
                col[index] = value
            self._count = index + 1
        finally:
            self._pool.append(state)

    def _grow(self, capacity: int) -> None:
        def grown(array: np.ndarray) -> np.ndarray:
            out = np.empty(capacity, dtype=array.dtype)
            out[: self._count] = array[: self._count]
            return out

        def grown_zeros(array: np.ndarray) -> np.ndarray:
            out = np.zeros(capacity, dtype=array.dtype)
            out[: self._count] = array[: self._count]
            return out

        self._e2e = grown(self._e2e)
        self._cpu = grown(self._cpu)
        self._workload = grown(self._workload)
        self._rid = grown(self._rid)
        self._status = grown_zeros(self._status)
        self._degraded = grown_zeros(self._degraded)
        self._retries = grown_zeros(self._retries)
        self._attempts = grown_zeros(self._attempts)
        self._hedged = grown_zeros(self._hedged)
        self._deadline = grown_zeros(self._deadline)
        self._stack_cols = {key: grown(col) for key, col in self._stack_cols.items()}
        self._shard_cpu_cols = {
            key: grown_zeros(col) for key, col in self._shard_cpu_cols.items()
        }
        self._shard_op_cols = {
            key: grown_zeros(col) for key, col in self._shard_op_cols.items()
        }

    # -- column export -----------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    def export_columns(
        self,
    ) -> tuple[
        int,
        np.ndarray,
        np.ndarray,
        dict[tuple[str, str], np.ndarray],
        np.ndarray,
        dict[int, np.ndarray],
        dict[int, np.ndarray],
        np.ndarray,
        np.ndarray,
        np.ndarray,
        np.ndarray,
        np.ndarray,
        np.ndarray,
        np.ndarray,
    ]:
        """Hand over the backing arrays (count, e2e, cpu, stack columns,
        workload indices, per-shard CPU columns, per-shard op-time columns,
        the chaos columns: request ids, status, degraded, retries, then
        the resilience columns: attempts, hedged, deadline_exceeded).

        The caller (``RunResult.adopt_aggregate``) slices by count; the
        arrays are *not* copied, so a tracer must not be reused after
        export.
        """
        return (
            self._count,
            self._e2e,
            self._cpu,
            self._stack_cols,
            self._workload,
            self._shard_cpu_cols,
            self._shard_op_cols,
            self._rid,
            self._status,
            self._degraded,
            self._retries,
            self._attempts,
            self._hedged,
            self._deadline,
        )

    # -- lifecycle / parity with Tracer ------------------------------------
    def in_flight(self) -> int:
        """Number of requests whose accumulators are still live."""
        return len(self._live)

    def request_ids(self) -> list[int]:
        return sorted(self._live)

    def drain_incomplete(self) -> list[int]:
        """Free accumulators of requests that never completed."""
        stale = sorted(self._live)
        for request_id in stale:
            self._pool.append(self._live.pop(request_id))
        self._last_id = None
        self._last_state = None
        return stale

    def assert_drained(self) -> None:
        """Raise if any request's accumulators are still live."""
        if self._live:
            held = sorted(self._live)
            raise RuntimeError(
                f"tracer still holds accumulators for {len(held)} request(s): "
                f"{held[:8]}{'...' if len(held) > 8 else ''}"
            )

    def clear(self) -> None:
        self._live.clear()
        self._last_id = None
        self._last_state = None

"""Trace spans for the cross-layer instrumentation framework (paper Sec. IV).

The paper adds trace points at three layers of the serving stack -- the
RPC service (Thrift), the ML framework (Caffe2), and the ML operators --
on every shard, and logs wall-clock timestamps plus per-request CPU time.
A :class:`Span` is one instrumented interval:

* ``start``/``end`` are **wall-clock** times *as stamped by the recording
  server*, i.e. including that server's clock skew.  Durations of spans on
  the same server are skew-free; cross-server comparisons must use the
  duration-difference method (Section IV-B), which the attribution module
  implements.
* ``cpu_time`` is the core occupancy attributed to the span (the paper
  logs per-shard CPU time per request to validate wall-clock proxies).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.types import OpCategory

MAIN_SHARD = -1
"""Shard index used for the main (dense) shard in spans."""


class Layer(enum.Enum):
    """Instrumentation layer of a span."""

    SERVICE = "service"
    """RPC service handler work (request routing, boilerplate)."""

    SERDE = "serde"
    """Request/response serialization or deserialization."""

    NET_OVERHEAD = "net-overhead"
    """ML-framework time not spent in operators (scheduling etc.)."""

    OPERATOR = "operator"
    """ML operator execution; ``category`` identifies the group."""

    RPC_CLIENT = "rpc-client"
    """Outstanding remote call measured at the calling shard."""

    EMBEDDED = "embedded"
    """The embedded portion: local sparse ops (singular) or the window
    from RPC issue to last response (distributed), per net per batch."""

    BATCH = "batch"
    """One batch's end-to-end execution window on the main shard."""


@dataclass(slots=True)
class Span:
    """One instrumented interval of one request.

    ``slots=True``: simulations allocate one Span per instrumented
    interval (hundreds per request), so the per-instance dict is worth
    eliminating -- see ``benchmarks/test_perf_throughput.py``.
    """

    request_id: int
    shard: int
    server: str
    layer: Layer
    name: str
    start: float
    end: float
    cpu_time: float = 0.0
    category: OpCategory | None = None
    net: str | None = None
    batch: int | None = None
    rpc_id: int | None = None

    @property
    def duration(self) -> float:
        """Wall-clock duration (skew-free: start/end share a server)."""
        return self.end - self.start

    def __post_init__(self):
        if self.end < self.start:
            raise ValueError(
                f"span {self.name}: end {self.end} precedes start {self.start}"
            )


class Tracer:
    """Collects spans, grouped by request for post-processing.

    ``pop_request`` hands a request's spans to the attribution pipeline and
    frees them -- full experiment sweeps process millions of spans and are
    attributed incrementally, mirroring the paper's asynchronous flush of
    trace buffers to offline analysis.
    """

    def __init__(self):
        self._by_request: dict[int, list[Span]] = {}
        self.spans_recorded = 0

    def record(self, span: Span) -> None:
        self._by_request.setdefault(span.request_id, []).append(span)
        self.spans_recorded += 1

    def for_request(self, request_id: int) -> list[Span]:
        return list(self._by_request.get(request_id, []))

    def pop_request(self, request_id: int) -> list[Span]:
        return self._by_request.pop(request_id, [])

    def request_ids(self) -> list[int]:
        return sorted(self._by_request)

    def clear(self) -> None:
        self._by_request.clear()

"""Trace spans for the cross-layer instrumentation framework (paper Sec. IV).

The paper adds trace points at three layers of the serving stack -- the
RPC service (Thrift), the ML framework (Caffe2), and the ML operators --
on every shard, and logs wall-clock timestamps plus per-request CPU time.
A :class:`Span` is one instrumented interval:

* ``start``/``end`` are **wall-clock** times *as stamped by the recording
  server*, i.e. including that server's clock skew.  Durations of spans on
  the same server are skew-free; cross-server comparisons must use the
  duration-difference method (Section IV-B), which the attribution module
  implements.
* ``cpu_time`` is the core occupancy attributed to the span (the paper
  logs per-shard CPU time per request to validate wall-clock proxies).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.types import OpCategory

MAIN_SHARD = -1
"""Shard index used for the main (dense) shard in spans."""


class Layer(enum.Enum):
    """Instrumentation layer of a span."""

    SERVICE = "service"
    """RPC service handler work (request routing, boilerplate)."""

    SERDE = "serde"
    """Request/response serialization or deserialization."""

    NET_OVERHEAD = "net-overhead"
    """ML-framework time not spent in operators (scheduling etc.)."""

    OPERATOR = "operator"
    """ML operator execution; ``category`` identifies the group."""

    RPC_CLIENT = "rpc-client"
    """Outstanding remote call measured at the calling shard."""

    EMBEDDED = "embedded"
    """The embedded portion: local sparse ops (singular) or the window
    from RPC issue to last response (distributed), per net per batch."""

    BATCH = "batch"
    """One batch's end-to-end execution window on the main shard."""


@dataclass(slots=True)
class Span:
    """One instrumented interval of one request.

    ``slots=True``: simulations allocate one Span per instrumented
    interval (hundreds per request), so the per-instance dict is worth
    eliminating -- see ``benchmarks/test_perf_throughput.py``.
    """

    request_id: int
    shard: int
    server: str
    layer: Layer
    name: str
    start: float
    end: float
    cpu_time: float = 0.0
    category: OpCategory | None = None
    net: str | None = None
    batch: int | None = None
    rpc_id: int | None = None

    @property
    def duration(self) -> float:
        """Wall-clock duration (skew-free: start/end share a server)."""
        return self.end - self.start

    def __post_init__(self):
        if self.end < self.start:
            raise ValueError(
                f"span {self.name}: end {self.end} precedes start {self.start}"
            )


class Tracer:
    """Collects spans, grouped by request for post-processing.

    ``pop_request`` hands a request's spans to the attribution pipeline and
    frees them -- full experiment sweeps process millions of spans and are
    attributed incrementally, mirroring the paper's asynchronous flush of
    trace buffers to offline analysis.
    """

    def __init__(self):
        self._by_request: dict[int, list[Span]] = {}
        self.spans_recorded = 0

    def record(self, span: Span) -> None:
        self._by_request.setdefault(span.request_id, []).append(span)
        self.spans_recorded += 1

    def record_interval(
        self,
        request_id: int,
        shard: int,
        server,
        layer: Layer,
        name: str,
        start: float,
        end: float,
        cpu: float = 0.0,
        category: OpCategory | None = None,
        net: str | None = None,
        batch: int | None = None,
        rpc_id: int | None = None,
    ) -> None:
        """Record one instrumented interval straight from the simulator.

        ``start``/``end`` are engine times; the span is stamped with the
        recording ``server``'s wall clock (engine time + skew), exactly as
        that server would log it.  This is the single tracer entry point
        the serving layer calls -- :class:`AggregatingTracer
        <repro.tracing.aggregate.AggregatingTracer>` implements the same
        signature without materializing ``Span`` objects.
        """
        skew = server.clock_skew
        self.record(
            Span(
                request_id=request_id,
                shard=shard,
                server=server.name,
                layer=layer,
                name=name,
                start=start + skew,
                end=end + skew,
                cpu_time=cpu,
                category=category,
                net=net,
                batch=batch,
                rpc_id=rpc_id,
            )
        )

    def for_request(self, request_id: int) -> list[Span]:
        return list(self._by_request.get(request_id, []))

    def pop_request(self, request_id: int) -> list[Span]:
        return self._by_request.pop(request_id, [])

    def request_ids(self) -> list[int]:
        return sorted(self._by_request)

    def in_flight(self) -> int:
        """Number of requests whose spans are still buffered."""
        return len(self._by_request)

    def drain_incomplete(self) -> list[int]:
        """Free spans of requests that never completed; return their ids.

        Timed-out or abandoned requests are only ever freed via
        ``pop_request`` on completion, so a long replay would otherwise
        accumulate their spans for its whole lifetime.  The replay drivers
        call this once the event heap drains (when completions are being
        consumed incrementally) so a finished run holds no spans.
        """
        stale = sorted(self._by_request)
        self._by_request.clear()
        return stale

    def assert_drained(self) -> None:
        """Raise if any request's spans are still buffered."""
        if self._by_request:
            held = sorted(self._by_request)
            raise RuntimeError(
                f"tracer still holds spans for {len(held)} request(s): "
                f"{held[:8]}{'...' if len(held) > 8 else ''}"
            )

    def clear(self) -> None:
        self._by_request.clear()

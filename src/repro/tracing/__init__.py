"""Cross-layer distributed tracing: spans, tracer, attribution.

Two trace modes (:class:`~repro.tracing.aggregate.TraceMode`): ``FULL``
materializes spans and retains per-request attributions; ``AGGREGATE``
accumulates bucket sums span-free and emits bit-identical columnar
results -- the sweep fast path.
"""

from repro.tracing.aggregate import AggregatingTracer, TraceMode
from repro.tracing.attribution import (
    CPU_BUCKETS,
    CPU_OPS,
    CPU_SERVICE,
    DENSE_OPS,
    E2E_BUCKETS,
    EMBEDDED_BUCKETS,
    EMBEDDED_PORTION,
    NET_OVERHEAD,
    NETWORK_LATENCY,
    RPC_SERDE,
    RPC_SERVICE,
    SPARSE_OPS,
    AttributionError,
    RequestAttribution,
    attribute_request,
)
from repro.tracing.span import MAIN_SHARD, Layer, Span, Tracer
from repro.tracing.visualize import render_trace, trace_summary

__all__ = [
    "AggregatingTracer",
    "AttributionError",
    "CPU_BUCKETS",
    "CPU_OPS",
    "CPU_SERVICE",
    "DENSE_OPS",
    "E2E_BUCKETS",
    "EMBEDDED_BUCKETS",
    "EMBEDDED_PORTION",
    "Layer",
    "MAIN_SHARD",
    "NET_OVERHEAD",
    "NETWORK_LATENCY",
    "RPC_SERDE",
    "RPC_SERVICE",
    "RequestAttribution",
    "SPARSE_OPS",
    "Span",
    "TraceMode",
    "Tracer",
    "attribute_request",
    "render_trace",
    "trace_summary",
]

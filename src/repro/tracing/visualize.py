"""ASCII rendering of a distributed trace (paper Figure 3).

The paper's tracing framework reconstructs "a visualization of events,
resembling Figure 3": a swimlane per shard, showing the main shard's net
execution with asynchronous RPC windows, and each sparse shard's serde /
service / SLS work.  This module renders one request's spans the same
way, with one lane for the request, one per batch on the main shard, and
one per sparse shard.

Lane glyphs::

    =  service handler / request window      #  dense operator
    S  sparse (SLS) operator                 +  serialization
    ~  framework (net) overhead              .  embedded wait (RPC window)
    -  outstanding RPC (client side)

Wall-clock skew note: lanes use each server's stamped wall clock, exactly
like the paper's visualization; with large skews, shard lanes visibly
shift against the main lane, which is why attribution never compares raw
timestamps across servers (Section IV-B).
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.types import OpCategory
from repro.tracing.span import MAIN_SHARD, Layer, Span

_GLYPHS = {
    Layer.SERVICE: "=",
    Layer.SERDE: "+",
    Layer.NET_OVERHEAD: "~",
    Layer.EMBEDDED: ".",
    Layer.RPC_CLIENT: "-",
    Layer.BATCH: "=",
}

#: Paint order: later entries overwrite earlier ones within a lane.
_PRECEDENCE = (
    Layer.SERVICE,
    Layer.BATCH,
    Layer.RPC_CLIENT,
    Layer.EMBEDDED,
    Layer.NET_OVERHEAD,
    Layer.SERDE,
    Layer.OPERATOR,
)


def _glyph(span: Span) -> str:
    if span.layer is Layer.OPERATOR:
        return "S" if span.category is OpCategory.SPARSE else "#"
    return _GLYPHS[span.layer]


def _lane_key(span: Span) -> tuple:
    if span.shard == MAIN_SHARD:
        if span.layer in (Layer.SERVICE, Layer.SERDE) and span.batch is None:
            return (0, "main request")
        if span.layer is Layer.RPC_CLIENT:
            return (1, f"main batch {span.batch} rpcs")
        return (1, f"main batch {span.batch}")
    return (2, f"sparse shard {span.shard + 1}")


def render_trace(spans: list[Span], width: int = 96) -> str:
    """Render one request's spans as a Figure-3-style timeline."""
    if not spans:
        raise ValueError("no spans to render")
    t0 = min(span.start for span in spans)
    t1 = max(span.end for span in spans)
    window = max(t1 - t0, 1e-12)
    scale = width / window

    lanes: dict[tuple, list[Span]] = defaultdict(list)
    for span in spans:
        lanes[_lane_key(span)].append(span)

    order = {layer: i for i, layer in enumerate(_PRECEDENCE)}
    lines = []
    label_width = max(len(label) for _, label in lanes)
    for (_, label), lane_spans in sorted(lanes.items()):
        row = [" "] * width
        lane_spans.sort(key=lambda s: order.get(s.layer, 0))
        for span in lane_spans:
            begin = int((span.start - t0) * scale)
            end = max(begin + 1, int((span.end - t0) * scale))
            glyph = _glyph(span)
            for column in range(begin, min(end, width)):
                row[column] = glyph
        lines.append(f"{label.ljust(label_width)} |{''.join(row)}|")

    legend = (
        "legend: = service  # dense op  S sparse op  + serde  ~ net overhead  "
        ". rpc wait  - outstanding rpc"
    )
    duration_note = f"window: {window * 1e3:.3f} ms"
    return "\n".join([legend, duration_note] + lines)


def trace_summary(spans: list[Span]) -> dict[str, float]:
    """Quick per-layer duration totals for one request (debug helper)."""
    totals: dict[str, float] = defaultdict(float)
    for span in spans:
        totals[span.layer.value] += span.duration
    return dict(totals)

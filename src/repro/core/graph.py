"""Operator-graph representation of a model (paper Figure 2).

A model is a sequence of **nets**; each net is an ordered list of operators
over named blobs in a workspace, exactly as in the Caffe2 framework the
paper builds on.  Operators execute sequentially within a net -- extra
cores serve request- and batch-level parallelism instead (Section IV-A) --
except for asynchronous RPC operators, which a distributed net issues in
parallel and joins before the feature-interaction layers.

Graph validity (checked by :func:`validate_net`):

* every operator input is either an external input or produced earlier
  (nets are topologically ordered by construction -- no cycles);
* no blob is produced twice;
* shard boundaries cannot form cycles (enforced by the partitioner: sparse
  shards never call back into the main shard).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.core.types import OpCategory

if TYPE_CHECKING:
    from repro.core.operators import Operator


class GraphError(ValueError):
    """Raised when a net or model graph is malformed."""


@dataclass
class Net:
    """An ordered operator list with declared external inputs/outputs."""

    name: str
    operators: list["Operator"] = field(default_factory=list)
    external_inputs: set[str] = field(default_factory=set)
    external_outputs: list[str] = field(default_factory=list)

    def add(self, operator: "Operator") -> "Operator":
        self.operators.append(operator)
        return operator

    def blobs_produced(self) -> set[str]:
        produced: set[str] = set()
        for operator in self.operators:
            produced.update(operator.outputs)
        return produced

    def operators_by_category(self, category: OpCategory) -> list["Operator"]:
        return [op for op in self.operators if op.category is category]


def validate_net(net: Net) -> None:
    """Check single-assignment and input availability; raise GraphError."""
    available = set(net.external_inputs)
    produced: set[str] = set()
    for operator in net.operators:
        for blob in operator.inputs:
            if blob not in available:
                raise GraphError(
                    f"net {net.name}: op {operator.name} reads undefined blob {blob!r}"
                )
        for blob in operator.outputs:
            if blob in produced:
                raise GraphError(
                    f"net {net.name}: blob {blob!r} produced twice (op {operator.name})"
                )
            produced.add(blob)
            available.add(blob)
    for blob in net.external_outputs:
        if blob not in available:
            raise GraphError(f"net {net.name}: external output {blob!r} never produced")


@dataclass
class ModelGraph:
    """The ordered nets of one model; later nets may read earlier outputs."""

    name: str
    nets: list[Net] = field(default_factory=list)

    def net(self, name: str) -> Net:
        for net in self.nets:
            if net.name == name:
                return net
        raise KeyError(f"no net named {name}")

    def validate(self) -> None:
        carried: set[str] = set()
        for net in self.nets:
            missing = net.external_inputs - carried
            # External inputs not carried from earlier nets must be fed by
            # the request itself; that is legal, so only net-local checks
            # are strict here.
            validate_net(net)
            carried.update(net.blobs_produced())
            carried.update(net.external_inputs)
            del missing

    def all_operators(self) -> Iterable["Operator"]:
        for net in self.nets:
            yield from net.operators

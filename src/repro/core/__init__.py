"""Core substrate: operator graphs, numeric execution, embedding tables.

This package init stays import-light to avoid cycles: ``repro.models``
depends on :mod:`repro.core.types`, while the heavier numeric modules
(:mod:`repro.core.dlrm`, :mod:`repro.core.embedding`) depend on
``repro.models``.  Import those submodules directly, or use the top-level
:mod:`repro` namespace which re-exports everything.
"""

from repro.core.types import DType, OpCategory

__all__ = ["DType", "OpCategory"]

"""Shared units, dtypes, and formatting helpers.

All simulation times are expressed in **seconds** (floats) and all sizes in
**bytes** (floats, so that fractional per-element costs compose cleanly).
The constants below exist so that call sites read naturally, e.g.
``latency = 120 * US`` or ``capacity = 194 * GIB``.
"""

from __future__ import annotations

import enum

# --- size units -------------------------------------------------------------
KIB = 1024.0
MIB = 1024.0 * KIB
GIB = 1024.0 * MIB
TIB = 1024.0 * GIB

# --- time units -------------------------------------------------------------
NS = 1e-9
US = 1e-6
MS = 1e-3
SECOND = 1.0


class DType(enum.Enum):
    """Element types used by embedding tables and dense parameters.

    ``row_overhead_bytes`` models the per-row scale/bias metadata stored by
    row-wise linear quantization (two fp16 values for the quantized types),
    mirroring the production format referenced in Section VII-D.
    """

    FP32 = ("fp32", 4.0, 0.0)
    FP16 = ("fp16", 2.0, 0.0)
    INT8 = ("int8", 1.0, 4.0)
    INT4 = ("int4", 0.5, 4.0)

    def __init__(self, label: str, bytes_per_element: float, row_overhead_bytes: float):
        self.label = label
        self.bytes_per_element = bytes_per_element
        self.row_overhead_bytes = row_overhead_bytes

    def row_bytes(self, dim: int) -> float:
        """Storage footprint of one embedding row of width ``dim``."""
        return dim * self.bytes_per_element + self.row_overhead_bytes


class OpCategory(enum.Enum):
    """Operator groups used for compute attribution (paper Figure 4)."""

    HASH = "Hash"
    FILL = "Fill"
    SCALE_CLIP = "Scale/Clip"
    ACTIVATIONS = "Activations"
    SPARSE = "Sparse"
    FEATURE_TRANSFORMS = "Feature Transforms"
    MEMORY_TRANSFORMS = "Memory Transformations"
    DENSE = "Dense"
    RPC = "RPC"

    @property
    def is_sparse(self) -> bool:
        return self is OpCategory.SPARSE


#: Categories executed by dense (non-embedding) portions of the model.
DENSE_CATEGORIES = (
    OpCategory.HASH,
    OpCategory.FILL,
    OpCategory.SCALE_CLIP,
    OpCategory.ACTIVATIONS,
    OpCategory.FEATURE_TRANSFORMS,
    OpCategory.MEMORY_TRANSFORMS,
    OpCategory.DENSE,
)


def format_bytes(n: float) -> str:
    """Render a byte count with a binary suffix, e.g. ``194.05 GiB``."""
    for unit, suffix in ((TIB, "TiB"), (GIB, "GiB"), (MIB, "MiB"), (KIB, "KiB")):
        if abs(n) >= unit:
            return f"{n / unit:.2f} {suffix}"
    return f"{n:.0f} B"


def format_duration(seconds: float) -> str:
    """Render a duration with the most natural sub-second suffix."""
    if abs(seconds) >= 1.0:
        return f"{seconds:.3f} s"
    if abs(seconds) >= MS:
        return f"{seconds / MS:.3f} ms"
    if abs(seconds) >= US:
        return f"{seconds / US:.1f} us"
    return f"{seconds / NS:.0f} ns"

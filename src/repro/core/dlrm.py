"""Materialized, executable DLRM-like models.

Builds a real (reduced-scale) version of a :class:`repro.models.ModelConfig`
as operator graphs over numpy weights, following the architecture of paper
Figure 2a:

* each non-final net (the *user* net) embeds its sparse features, combines
  them with dense features through an MLP, and emits a request-level
  feature vector;
* the final net (the *content/product* net) embeds its per-item sparse
  features, consumes the prior net's output, applies dot-product feature
  interaction, and scores every candidate item with a top MLP + sigmoid.

This numeric path exists to *prove* that sharded execution is equivalent to
singular execution; the serving simulator handles timing at full scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.embedding import EmbeddingTable
from repro.core.graph import ModelGraph, Net
from repro.core.operators import (
    Clip,
    Concat,
    DotInteraction,
    FullyConnected,
    HashMod,
    Relu,
    Sigmoid,
    SparseLengthsSum,
    Workspace,
)
from repro.core.executor import NetExecutor
from repro.core.rng import substream
from repro.models.config import FeatureScope, ModelConfig, TableConfig


@dataclass(frozen=True)
class SparseInput:
    """Raw ids and per-segment lengths for one table's feature."""

    values: np.ndarray
    lengths: np.ndarray


@dataclass
class NumericRequest:
    """A fully materialized inference request for the numeric path."""

    request_id: int
    num_items: int
    user_dense: np.ndarray
    item_dense: np.ndarray
    sparse: dict[str, SparseInput] = field(default_factory=dict)


@dataclass(frozen=True)
class MaterializedDims:
    """Dense-layer widths of the materialized model."""

    d_user: int = 16
    d_item: int = 16
    d_hidden: int = 32
    d_proj: int = 24
    d_interact: int = 16
    d_top: int = 32


class MaterializedModel:
    """A runnable reduced-scale instance of a model config."""

    def __init__(
        self,
        config: ModelConfig,
        tables: dict[str, EmbeddingTable],
        params: dict[str, np.ndarray],
        dims: MaterializedDims,
    ):
        self.config = config
        self.tables = tables
        self.params = params
        self.dims = dims
        self.graph = self._build_graph()
        self.graph.validate()

    # -- construction ------------------------------------------------------
    @classmethod
    def build(
        cls,
        config: ModelConfig,
        max_rows: int = 256,
        seed: int = 0,
        dims: MaterializedDims | None = None,
    ) -> "MaterializedModel":
        dims = dims or MaterializedDims()
        tables = {
            table.name: EmbeddingTable.materialize(table, max_rows=max_rows, seed=seed)
            for table in config.tables
        }
        params = cls._init_params(config, tables, dims, seed)
        return cls(config, tables, params, dims)

    @staticmethod
    def _init_params(
        config: ModelConfig,
        tables: dict[str, EmbeddingTable],
        dims: MaterializedDims,
        seed: int,
    ) -> dict[str, np.ndarray]:
        rng = substream(seed, "dense-params", config.name)

        def mat(name: str, rows: int, cols: int) -> None:
            params[name + "_w"] = rng.normal(0, 0.1, size=(rows, cols)).astype(np.float32)
            params[name + "_b"] = rng.normal(0, 0.01, size=(rows,)).astype(np.float32)

        params: dict[str, np.ndarray] = {}
        final = config.nets[-1].name
        for net_cfg in config.nets:
            name = net_cfg.name
            table_width = sum(tables[t.name].dim for t in config.tables_for_net(name))
            if name != final:
                mat(f"{name}_bottom", dims.d_hidden, dims.d_user)
                mat(f"{name}_proj", dims.d_proj, dims.d_hidden + table_width)
            else:
                mat(f"{name}_bottom", dims.d_hidden, dims.d_item)
                if len(config.nets) > 1:
                    mat(f"{name}_uint", dims.d_interact, dims.d_proj)
                else:
                    mat(f"{name}_uint", dims.d_interact, dims.d_user)
                mat(f"{name}_iint", dims.d_interact, dims.d_hidden)
                concat_width = dims.d_hidden + table_width + dims.d_interact + 1
                mat(f"{name}_top1", dims.d_top, concat_width)
                mat(f"{name}_top2", 1, dims.d_top)
        return params

    def _sls_ops(self, net: Net, table: TableConfig) -> str:
        """Append Hash + SLS ops for one table; return the pooled blob name."""
        t = table.name
        net.add(
            HashMod(
                name=f"hash_{t}",
                inputs=(f"{t}_values",),
                outputs=(f"{t}_hashed",),
                num_buckets=self.tables[t].num_rows,
            )
        )
        net.add(
            SparseLengthsSum(
                name=f"sls_{t}",
                inputs=(f"{t}_hashed", f"{t}_lengths"),
                outputs=(f"{t}_pooled",),
                table=self.tables[t],
            )
        )
        return f"{t}_pooled"

    def _build_graph(self) -> ModelGraph:
        graph = ModelGraph(self.config.name)
        final = self.config.nets[-1].name
        for net_cfg in self.config.nets:
            name = net_cfg.name
            net = Net(name)
            net.external_inputs.update(
                blob
                for table in self.config.tables_for_net(name)
                for blob in (f"{table.name}_values", f"{table.name}_lengths")
            )
            net.external_inputs.update(p for p in self.params if p.startswith(f"{name}_"))
            if name != final:
                self._build_user_net(net, name)
            else:
                self._build_final_net(net, name)
            graph.nets.append(net)
        return graph

    def _build_user_net(self, net: Net, name: str) -> None:
        net.external_inputs.add("user_dense")
        net.add(Clip(name=f"{name}_clip", inputs=("user_dense",), outputs=(f"{name}_clipped",), lo=-10, hi=10))
        net.add(
            FullyConnected(
                name=f"{name}_bottom",
                inputs=(f"{name}_clipped",),
                outputs=(f"{name}_h_raw",),
                weight_blob=f"{name}_bottom_w",
                bias_blob=f"{name}_bottom_b",
            )
        )
        net.add(Relu(name=f"{name}_relu1", inputs=(f"{name}_h_raw",), outputs=(f"{name}_h",)))
        pooled = [self._sls_ops(net, t) for t in self.config.tables_for_net(name)]
        net.add(
            Concat(
                name=f"{name}_concat",
                inputs=tuple([f"{name}_h"] + pooled),
                outputs=(f"{name}_concat_out",),
            )
        )
        net.add(
            FullyConnected(
                name=f"{name}_proj",
                inputs=(f"{name}_concat_out",),
                outputs=(f"{name}_proj_raw",),
                weight_blob=f"{name}_proj_w",
                bias_blob=f"{name}_proj_b",
            )
        )
        net.add(Relu(name=f"{name}_relu2", inputs=(f"{name}_proj_raw",), outputs=(f"{name}_out",)))
        net.external_outputs.append(f"{name}_out")

    def _build_final_net(self, net: Net, name: str) -> None:
        multi_net = len(self.config.nets) > 1
        net.external_inputs.add("item_dense")
        user_source = f"{self.config.nets[-2].name}_out" if multi_net else "user_dense"
        net.external_inputs.add(user_source)
        net.add(
            FullyConnected(
                name=f"{name}_bottom",
                inputs=("item_dense",),
                outputs=(f"{name}_h_raw",),
                weight_blob=f"{name}_bottom_w",
                bias_blob=f"{name}_bottom_b",
            )
        )
        net.add(Relu(name=f"{name}_relu1", inputs=(f"{name}_h_raw",), outputs=(f"{name}_h",)))
        pooled = [self._sls_ops(net, t) for t in self.config.tables_for_net(name)]
        net.add(
            FullyConnected(
                name=f"{name}_uint",
                inputs=(user_source,),
                outputs=(f"{name}_u_int",),
                weight_blob=f"{name}_uint_w",
                bias_blob=f"{name}_uint_b",
            )
        )
        net.add(
            FullyConnected(
                name=f"{name}_iint",
                inputs=(f"{name}_h",),
                outputs=(f"{name}_i_int",),
                weight_blob=f"{name}_iint_w",
                bias_blob=f"{name}_iint_b",
            )
        )
        net.add(
            DotInteraction(
                name=f"{name}_dot",
                inputs=(f"{name}_u_int", f"{name}_i_int"),
                outputs=(f"{name}_dot_out",),
            )
        )
        net.add(
            Concat(
                name=f"{name}_concat",
                inputs=tuple([f"{name}_h"] + pooled + [f"{name}_u_int", f"{name}_dot_out"]),
                outputs=(f"{name}_concat_out",),
            )
        )
        net.add(
            FullyConnected(
                name=f"{name}_top1",
                inputs=(f"{name}_concat_out",),
                outputs=(f"{name}_top1_raw",),
                weight_blob=f"{name}_top1_w",
                bias_blob=f"{name}_top1_b",
            )
        )
        net.add(Relu(name=f"{name}_relu2", inputs=(f"{name}_top1_raw",), outputs=(f"{name}_top1_out",)))
        net.add(
            FullyConnected(
                name=f"{name}_top2",
                inputs=(f"{name}_top1_out",),
                outputs=(f"{name}_logit",),
                weight_blob=f"{name}_top2_w",
                bias_blob=f"{name}_top2_b",
            )
        )
        net.add(Sigmoid(name=f"{name}_sigmoid", inputs=(f"{name}_logit",), outputs=("scores",)))
        net.external_outputs.append("scores")

    # -- execution -----------------------------------------------------------
    def feed_request(self, workspace: Workspace, request: NumericRequest) -> None:
        """Feed parameters and request blobs into a workspace."""
        for name, value in self.params.items():
            workspace.feed(name, value)
        workspace.feed("user_dense", np.atleast_2d(request.user_dense))
        workspace.feed("item_dense", np.atleast_2d(request.item_dense))
        for table in self.config.tables:
            sparse = request.sparse.get(table.name)
            if sparse is None:
                segments = (
                    request.num_items if table.scope is FeatureScope.ITEM else 1
                )
                values = np.zeros(0, dtype=np.int64)
                lengths = np.zeros(segments, dtype=np.int64)
            else:
                values, lengths = sparse.values, sparse.lengths
            workspace.feed(f"{table.name}_values", values)
            workspace.feed(f"{table.name}_lengths", lengths)

    def forward(self, request: NumericRequest) -> np.ndarray:
        """Score every candidate item; returns a (num_items,) array."""
        executor = NetExecutor()
        self.feed_request(executor.workspace, request)
        executor.run_model(self.graph)
        return executor.workspace.fetch("scores").reshape(-1)

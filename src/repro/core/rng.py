"""Deterministic, independently-seeded random streams.

Every stochastic component of the library (request synthesis, network
jitter, shard-to-server mapping, ...) draws from its own named substream so
that experiments are reproducible and components can be re-seeded without
perturbing one another.  Substreams are derived by hashing the root seed
together with a tuple of string/int keys.
"""

from __future__ import annotations

import hashlib

import numpy as np

_MASK64 = (1 << 64) - 1


def derive_seed(root_seed: int, *keys: object) -> int:
    """Derive a stable 64-bit seed from ``root_seed`` and a key path.

    The same ``(root_seed, *keys)`` always maps to the same seed on every
    platform and Python version (no reliance on ``hash()``).
    """
    hasher = hashlib.sha256()
    hasher.update(str(int(root_seed)).encode("utf-8"))
    for key in keys:
        hasher.update(b"\x1f")
        hasher.update(repr(key).encode("utf-8"))
    return int.from_bytes(hasher.digest()[:8], "little") & _MASK64


def substream(root_seed: int, *keys: object) -> np.random.Generator:
    """Return a ``numpy`` generator for the named substream."""
    return np.random.default_rng(derive_seed(root_seed, *keys))

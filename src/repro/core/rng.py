"""Deterministic, independently-seeded random streams.

Every stochastic component of the library (request synthesis, network
jitter, shard-to-server mapping, ...) draws from its own named substream so
that experiments are reproducible and components can be re-seeded without
perturbing one another.  Substreams are derived by hashing the root seed
together with a tuple of string/int keys.

Determinism contract
====================

The library guarantees byte-identical results for identical inputs --
across runs, across serial/parallel sweeps, and across FULL/AGGREGATE
trace modes.  Three rules make that hold:

1. **Every random draw comes from a named substream.**  A component
   never shares a generator with another component; it derives its own
   via ``substream(root_seed, *keys)``, where the key path names the
   component and its position, e.g.::

       substream(seed, "requests", model.name, table, comp)  # synthesis
       substream(seed, "fabric")                             # net jitter
       substream(seed, "clock-skew", *cluster_key)           # skew
       substream(seed, "chaos", "network", *cluster_key)     # spikes
       substream(seed, "chaos", "clock-skew", *cluster_key)  # replicas
       substream(seed, "chaos", "correlated", *cluster_key)  # stagger
       substream(seed, "resilience", *cluster_key)           # backoff

   Key paths are namespaced feature-first (``"chaos"``, ``"resilience"``)
   then by draw site, then by the cluster identity (``*cluster_key``),
   so every path is spelled at exactly one call site -- the whole-repo
   DET006 registry rejects two sites sharing one fully-constant path.

   Because the seed is a pure function of ``(root_seed, keys)`` -- a
   SHA-256 digest, never Python's salted ``hash()`` -- the stream is
   stable across platforms, Python versions, and process boundaries.
   That is what lets a parallel sweep fork one process per
   configuration and still match the serial sweep byte for byte: no
   draw depends on *which process* or *in which order* a configuration
   runs.

2. **Draw order within a substream is part of the schedule.**  Code
   draws from a substream in a deterministic order fixed by the replay
   (request ids ascending, simulation-event order, ...), never from
   under an iteration whose order can vary.

   *Canonical event ordering.*  "Simulation-event order" is itself
   pinned: every DES kernel dispatches events in ``(time, sequence)``
   order, where ``sequence`` is the global scheduling counter (see the
   module docstring of :mod:`repro.simulation.engine`).  Selectable
   kernels (``ServingConfig.kernel``) may only reorder *within* a
   timestamp in ways that provably cannot move a draw or a recorded
   float: the batched kernel's synchronous resource grants run pure
   computation earlier within the same instant, and its fused ``At``
   yields reproduce the exact sequential float additions of the chained
   yields they replace.  Anything beyond that must preserve the
   reference order bit for bit -- regression-pinned across every paper
   configuration in ``tests/test_kernel_equivalence.py``.

   *Vectorized equivalence.*  The ``vectorized`` kernel is the extreme
   case: it replays eligible runs (serial closed-loop, chaos-free,
   AGGREGATE tracing) with no event loop at all, so the canonical order
   has to be *reconstructed* rather than followed.  That is legal under
   this rule because in the eligible regime every draw position is a
   pure function of the precomputed plans: requests replay one at a
   time in id order, shard RPCs complete in a global time order the
   evaluator reproduces with an explicit heap, fabric jitter is drawn
   from its substream in bulk (a ``normal(size=N)`` draw consumes the
   bit stream exactly like ``N`` scalar draws) and dealt out in that
   same completion order, and every accumulator is reduced with the
   same left-associated sequential adds the chained yields perform --
   cumulative per-shard adds, never ``np.sum``, whose pairwise-tree
   reduction reassociates floats.  Same bits, same order, no loop;
   pinned alongside the batched kernel in
   ``tests/test_kernel_equivalence.py``.

3. **Optional features get their own substreams so that switching them
   off restores the exact base stream.**  The chaos layer
   (:mod:`repro.chaos`) is the sharpest case: fault times are explicit
   simulation times (no draws), and the only chaos randomness --
   network-spike jitter, clock skew for healed/replica servers,
   correlated-crash stagger -- comes from dedicated
   ``substream(seed, "chaos", ...)`` streams.  Running with
   ``chaos=None`` or with an *empty* :class:`FaultSchedule` therefore
   consumes zero draws from every pre-existing substream, and the
   replay is byte-identical to one without the chaos layer at all
   (regression-tested).  Had chaos shared, say, the fabric jitter
   stream, merely enabling the feature would shift every subsequent
   draw and perturb the healthy baseline it is meant to be compared
   against.

   The resilience layer (:mod:`repro.resilience`) follows the same
   clause: the only policy randomness -- backoff jitter stretching each
   retry delay -- draws from the dedicated
   ``substream(seed, "resilience", *cluster_key)`` stream, in
   simulation-event order (rule 2).  A ``resilience=None`` config or an
   *empty* :class:`~repro.resilience.ResiliencePolicy` installs no
   runtime and consumes zero draws, so the no-policy replay is
   byte-identical to one predating the layer (regression-tested in
   ``tests/test_resilience.py``), and hedged/retried replays stay
   byte-identical across serial and parallel sweeps because the stream
   is a pure function of ``(seed, cluster identity)``.

Static enforcement (``repro lint``)
-----------------------------------

The three rules above are enforced *statically* by :mod:`repro.lint`:
``python -m repro lint src`` (run by CI and by the self-lint test in
``tests/test_lint.py``) rejects the known ways of breaking them before
a sweep can silently diverge:

========  rule 1: every draw from a named substream
DET001    stdlib ``random`` / ``np.random`` global-state functions
DET002    unseeded ``np.random.default_rng()`` or bit generators
          constructed outside :func:`substream`
DET005    builtin salted ``hash()`` where a seed or key could flow
          (:func:`derive_seed` is the sanctioned derivation)
DET006    two call sites spelling the same fully-constant key path
          (they would share one stream; whole-repo registry)
========  rule 2: draw order is part of the schedule
DET004    draws or :func:`substream` derivation inside iteration over
          sets, un-``sorted`` dict views, or directory listings
========  rule 3: nothing outside the seed may leak in
DET003    wall-clock reads (``time.time``, ``perf_counter``,
          ``datetime.now``) in replayed code
DET007    ``os.environ`` reads inside ``repro.simulation`` /
          ``repro.serving`` / ``repro.chaos``
========  ===========================================================

Exceptions are auditable, never silent: a path-scoped allowlist entry
(:data:`repro.lint.config.DEFAULT_ALLOWLIST`) or an inline
``# detlint: disable=DETnnn -- <reason>`` comment whose reason clause
is mandatory.  See ``repro lint --help``.
"""

from __future__ import annotations

import hashlib

import numpy as np

_MASK64 = (1 << 64) - 1


def derive_seed(root_seed: int, *keys: object) -> int:
    """Derive a stable 64-bit seed from ``root_seed`` and a key path.

    The same ``(root_seed, *keys)`` always maps to the same seed on every
    platform and Python version (no reliance on ``hash()``).
    """
    hasher = hashlib.sha256()
    hasher.update(str(int(root_seed)).encode("utf-8"))
    for key in keys:
        hasher.update(b"\x1f")
        hasher.update(repr(key).encode("utf-8"))
    return int.from_bytes(hasher.digest()[:8], "little") & _MASK64


def substream(root_seed: int, *keys: object) -> np.random.Generator:
    """Return a ``numpy`` generator for the named substream."""
    return np.random.default_rng(derive_seed(root_seed, *keys))

"""Embedding tables: pooled lookups and row partitioning.

The ``SparseLengthsSum`` (SLS) operator family (paper Section II-1) gathers
rows of an embedding table by id and sum-pools them per output segment.
Tables too large for any single shard are *row partitioned* with a modulus
hash (Section III-A1): row ``r`` lives on partition ``r % P`` at local
index ``r // P``, ids are routed the same way, and the pooled partial sums
from each partition add back to the unpartitioned result (sum pooling is
associative).

Tables exist in two forms:

* **virtual** -- metadata only (:class:`repro.models.TableConfig`), used by
  the capacity-driven sharding strategies and the serving simulator at
  full production scale;
* **materialized** -- real ``numpy`` weights at reduced row counts, used to
  prove that distributed execution is numerically identical to singular
  execution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.rng import substream
from repro.models.config import TableConfig


class EmbeddingTable:
    """A materialized embedding table with sum-pooled lookup."""

    def __init__(self, config: TableConfig, weights: np.ndarray):
        if weights.ndim != 2:
            raise ValueError("weights must be a 2-D (rows x dim) array")
        if weights.shape[1] != config.dim:
            raise ValueError(
                f"table {config.name}: weights dim {weights.shape[1]} != config dim {config.dim}"
            )
        self.config = config
        self.weights = weights

    @property
    def num_rows(self) -> int:
        return self.weights.shape[0]

    @property
    def dim(self) -> int:
        return self.weights.shape[1]

    @classmethod
    def materialize(
        cls, config: TableConfig, max_rows: int = 512, seed: int = 0
    ) -> "EmbeddingTable":
        """Build real weights for ``config``, capping rows at ``max_rows``.

        Mirrors the paper's methodology of proportionally scaling tables
        down to fit the experiment platform (Section V-A).
        """
        rows = min(config.num_rows, max_rows)
        rng = substream(seed, "weights", config.name)
        weights = rng.normal(0.0, 0.05, size=(rows, config.dim)).astype(np.float32)
        return cls(config, weights)

    def lookup_sum(self, values: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        """SparseLengthsSum: sum-pool rows per segment.

        Args:
            values: Flat array of row ids, already hashed into range.
            lengths: Ids per output segment; ``sum(lengths) == len(values)``.

        Returns:
            ``(len(lengths), dim)`` float32 matrix; empty segments are zero.
        """
        values = np.asarray(values, dtype=np.int64)
        lengths = np.asarray(lengths, dtype=np.int64)
        if values.size and (values.min() < 0 or values.max() >= self.num_rows):
            raise IndexError(
                f"table {self.config.name}: id out of range [0, {self.num_rows})"
            )
        if int(lengths.sum()) != values.size:
            raise ValueError("sum(lengths) must equal len(values)")
        output = np.zeros((lengths.size, self.dim), dtype=np.float32)
        if values.size:
            segments = np.repeat(np.arange(lengths.size), lengths)
            np.add.at(output, segments, self.weights[values])
        return output


@dataclass(frozen=True)
class RowShardRouting:
    """Routing metadata for one partition of a row-partitioned table."""

    table_name: str
    part_index: int
    num_parts: int

    def owns(self, ids: np.ndarray) -> np.ndarray:
        """Boolean mask of the ids this partition serves (``id % P == k``)."""
        return (np.asarray(ids, dtype=np.int64) % self.num_parts) == self.part_index

    def to_local(self, ids: np.ndarray) -> np.ndarray:
        """Map global row ids to this partition's compacted local ids."""
        return np.asarray(ids, dtype=np.int64) // self.num_parts


class PartitionedEmbeddingTable:
    """One partition of a row-partitioned table, with compacted storage."""

    def __init__(self, parent: EmbeddingTable, routing: RowShardRouting):
        self.routing = routing
        self.config = parent.config
        self.weights = parent.weights[routing.part_index :: routing.num_parts]
        self._local = EmbeddingTable(_reshaped_config(parent.config, self.weights), self.weights)

    @property
    def num_rows(self) -> int:
        return self.weights.shape[0]

    def lookup_sum_partial(self, values: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        """Partial SLS over only the ids owned by this partition.

        ``values``/``lengths`` describe the *full* lookup; ids belonging to
        other partitions are dropped, so summing every partition's partial
        result reconstructs the unpartitioned pooled output exactly.
        """
        values = np.asarray(values, dtype=np.int64)
        lengths = np.asarray(lengths, dtype=np.int64)
        mask = self.routing.owns(values)
        segments = np.repeat(np.arange(lengths.size), lengths)
        local_values = self.routing.to_local(values[mask])
        local_lengths = np.bincount(segments[mask], minlength=lengths.size)
        return self._local.lookup_sum(local_values, local_lengths)


def partition_table(table: EmbeddingTable, num_parts: int) -> list[PartitionedEmbeddingTable]:
    """Split a materialized table into ``num_parts`` row partitions."""
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    return [
        PartitionedEmbeddingTable(
            table, RowShardRouting(table.config.name, part, num_parts)
        )
        for part in range(num_parts)
    ]


def _reshaped_config(config: TableConfig, weights: np.ndarray) -> TableConfig:
    """Clone a table config with the partition's (smaller) row count."""
    return TableConfig(
        name=config.name,
        net=config.net,
        num_rows=max(1, weights.shape[0]),
        dim=config.dim,
        dtype=config.dtype,
        scope=config.scope,
        activation_prob=config.activation_prob,
        mean_ids=config.mean_ids,
    )

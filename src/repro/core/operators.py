"""Numeric operator implementations (the Caffe2-like op set).

Each operator reads/writes named blobs in a :class:`Workspace`.  The set
covers everything the paper's models need: dense fully-connected stacks,
activations, feature transforms, the SparseLengthsSum family (whole and
row-partitioned tables), zero-fill for absent sparse features, feature
interaction, and the RPC operator used by distributed nets.

``RemoteCall`` is deliberately transport-agnostic: it holds a callable
(bound to a shard service) so the same operator drives both the in-process
numeric path (correctness tests) and latency-simulated serving.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.embedding import EmbeddingTable, PartitionedEmbeddingTable
from repro.core.types import OpCategory


class Workspace:
    """Named blob storage shared by a net's operators."""

    def __init__(self):
        self._blobs: dict[str, np.ndarray] = {}

    def feed(self, name: str, value: np.ndarray) -> None:
        self._blobs[name] = np.asarray(value)

    def fetch(self, name: str) -> np.ndarray:
        try:
            return self._blobs[name]
        except KeyError:
            raise KeyError(f"blob {name!r} not in workspace") from None

    def has(self, name: str) -> bool:
        return name in self._blobs

    def blobs(self) -> set[str]:
        return set(self._blobs)


@dataclass
class Operator:
    """Base operator: named inputs/outputs plus an attribution category."""

    name: str
    inputs: tuple[str, ...]
    outputs: tuple[str, ...]
    category: OpCategory = OpCategory.DENSE

    def run(self, workspace: Workspace) -> None:
        raise NotImplementedError

    @property
    def is_async(self) -> bool:
        return False


@dataclass
class FullyConnected(Operator):
    """y = x @ W^T + b, with weights held in the workspace."""

    weight_blob: str = ""
    bias_blob: str = ""
    category: OpCategory = OpCategory.DENSE

    def run(self, workspace: Workspace) -> None:
        x = np.atleast_2d(workspace.fetch(self.inputs[0]))
        weight = workspace.fetch(self.weight_blob)
        bias = workspace.fetch(self.bias_blob)
        workspace.feed(self.outputs[0], x @ weight.T + bias)


@dataclass
class Relu(Operator):
    category: OpCategory = OpCategory.ACTIVATIONS

    def run(self, workspace: Workspace) -> None:
        workspace.feed(self.outputs[0], np.maximum(workspace.fetch(self.inputs[0]), 0.0))


@dataclass
class Sigmoid(Operator):
    category: OpCategory = OpCategory.ACTIVATIONS

    def run(self, workspace: Workspace) -> None:
        x = workspace.fetch(self.inputs[0])
        workspace.feed(self.outputs[0], 1.0 / (1.0 + np.exp(-x)))


@dataclass
class Clip(Operator):
    """Clamp values into [lo, hi] (the paper's Scale/Clip group)."""

    lo: float = -1e30
    hi: float = 1e30
    category: OpCategory = OpCategory.SCALE_CLIP

    def run(self, workspace: Workspace) -> None:
        workspace.feed(
            self.outputs[0], np.clip(workspace.fetch(self.inputs[0]), self.lo, self.hi)
        )


@dataclass
class HashMod(Operator):
    """Hash raw 64-bit sparse ids into a table's bucket range."""

    num_buckets: int = 1
    category: OpCategory = OpCategory.HASH

    def run(self, workspace: Workspace) -> None:
        raw = np.asarray(workspace.fetch(self.inputs[0]), dtype=np.int64)
        # Splittable 64-bit mix keeps nearby raw ids from colliding into
        # nearby buckets, like a production hash.
        mixed = (raw ^ (raw >> 33)) * np.int64(0xFF51AFD7ED558CCD & 0x7FFFFFFFFFFFFFFF)
        workspace.feed(self.outputs[0], np.abs(mixed) % self.num_buckets)


@dataclass
class Concat(Operator):
    """Concatenate along the last axis, broadcasting row counts.

    Request-level blobs (shape ``(1, d)``) broadcast against per-item blobs
    (shape ``(items, d)``), which is how the user net's output joins the
    content net's per-item features.
    """

    category: OpCategory = OpCategory.MEMORY_TRANSFORMS

    def run(self, workspace: Workspace) -> None:
        parts = [np.atleast_2d(workspace.fetch(name)) for name in self.inputs]
        rows = max(part.shape[0] for part in parts)
        expanded = [
            np.broadcast_to(part, (rows, part.shape[1])) if part.shape[0] != rows else part
            for part in parts
        ]
        workspace.feed(self.outputs[0], np.concatenate(expanded, axis=1))


@dataclass
class ZeroFill(Operator):
    """Produce a zero matrix for an absent sparse feature.

    ``rows_like`` names a blob whose row count determines the output rows
    (or 1 for request-level features).
    """

    dim: int = 1
    rows_like: str = ""
    category: OpCategory = OpCategory.FILL

    def run(self, workspace: Workspace) -> None:
        rows = 1
        if self.rows_like:
            rows = np.atleast_2d(workspace.fetch(self.rows_like)).shape[0]
        workspace.feed(self.outputs[0], np.zeros((rows, self.dim), dtype=np.float32))


@dataclass
class SparseLengthsSum(Operator):
    """Pooled embedding lookup over a materialized table."""

    table: EmbeddingTable | None = None
    category: OpCategory = OpCategory.SPARSE

    def run(self, workspace: Workspace) -> None:
        values = workspace.fetch(self.inputs[0])
        lengths = workspace.fetch(self.inputs[1])
        workspace.feed(self.outputs[0], self.table.lookup_sum(values, lengths))


@dataclass
class SparseLengthsSumPartial(Operator):
    """Partial pooled lookup over one row partition of a huge table."""

    partition: PartitionedEmbeddingTable | None = None
    category: OpCategory = OpCategory.SPARSE

    def run(self, workspace: Workspace) -> None:
        values = workspace.fetch(self.inputs[0])
        lengths = workspace.fetch(self.inputs[1])
        workspace.feed(self.outputs[0], self.partition.lookup_sum_partial(values, lengths))


@dataclass
class SumBlobs(Operator):
    """Elementwise sum; merges row-partition partial pools on the main shard."""

    category: OpCategory = OpCategory.MEMORY_TRANSFORMS

    def run(self, workspace: Workspace) -> None:
        total = workspace.fetch(self.inputs[0]).copy()
        for name in self.inputs[1:]:
            total = total + workspace.fetch(name)
        workspace.feed(self.outputs[0], total)


@dataclass
class DotInteraction(Operator):
    """Pairwise dot-product feature interaction (DLRM style).

    Inputs are equal-width (rows x d) matrices; the output concatenates the
    upper-triangle pairwise dot products per row.
    """

    category: OpCategory = OpCategory.FEATURE_TRANSFORMS

    def run(self, workspace: Workspace) -> None:
        parts = [np.atleast_2d(workspace.fetch(name)) for name in self.inputs]
        rows = max(part.shape[0] for part in parts)
        stacked = np.stack(
            [np.broadcast_to(p, (rows, p.shape[1])) for p in parts], axis=1
        )  # rows x features x d
        gram = np.einsum("rfd,rgd->rfg", stacked, stacked)
        f = stacked.shape[1]
        upper = np.triu_indices(f, k=1)
        workspace.feed(self.outputs[0], gram[:, upper[0], upper[1]])


#: Signature of the callable bound into a RemoteCall: takes the net name and
#: the sparse inputs for this call, returns pooled outputs per blob name.
RemoteInvoker = Callable[[str, dict[str, np.ndarray]], dict[str, np.ndarray]]


@dataclass
class RemoteCall(Operator):
    """Asynchronous RPC operator replacing sparse subnets (paper Fig. 2b).

    Sends the sparse-id inputs for a group of tables to one sparse shard
    and receives their pooled outputs.  Inputs/outputs are the id/length
    blobs and the pooled blobs; ``invoke`` is bound by the partitioner.
    """

    shard_index: int = -1
    net_name: str = ""
    invoke: RemoteInvoker | None = None
    category: OpCategory = OpCategory.RPC

    def run(self, workspace: Workspace) -> None:
        payload = {name: workspace.fetch(name) for name in self.inputs}
        results = self.invoke(self.net_name, payload)
        expected = set(self.outputs)
        produced = set(results)
        if produced != expected:
            raise RuntimeError(
                f"rpc op {self.name}: shard returned {sorted(produced)}, "
                f"expected {sorted(expected)}"
            )
        for blob, value in results.items():
            workspace.feed(blob, value)

    @property
    def is_async(self) -> bool:
        return True

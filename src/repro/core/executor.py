"""Net execution over a workspace.

The numeric executor mirrors the Caffe2 semantics the paper describes
(Section IV-A): operators run sequentially in net order; asynchronous RPC
operators are *issued* in order but their results are only required at the
join point before feature interaction.  Numerically the schedule does not
matter (each blob is produced exactly once), so the executor runs ops in
order and records simple execution statistics that tests can assert on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.graph import ModelGraph, Net, validate_net
from repro.core.operators import Operator, Workspace
from repro.core.types import OpCategory


@dataclass
class ExecutionStats:
    """Counts collected while running nets (useful for tests/inspection)."""

    ops_run: int = 0
    ops_by_category: dict[OpCategory, int] = field(default_factory=dict)
    rpcs_issued: int = 0

    def record(self, operator: Operator) -> None:
        self.ops_run += 1
        self.ops_by_category[operator.category] = (
            self.ops_by_category.get(operator.category, 0) + 1
        )
        if operator.is_async:
            self.rpcs_issued += 1


class NetExecutor:
    """Runs validated nets against a workspace."""

    def __init__(self, workspace: Workspace | None = None):
        self.workspace = workspace or Workspace()
        self.stats = ExecutionStats()

    def run_net(self, net: Net) -> None:
        validate_net(net)
        for blob in net.external_inputs:
            if not self.workspace.has(blob):
                raise KeyError(
                    f"net {net.name}: external input {blob!r} missing from workspace"
                )
        for operator in net.operators:
            operator.run(self.workspace)
            self.stats.record(operator)

    def run_model(self, graph: ModelGraph) -> None:
        for net in graph.nets:
            self.run_net(net)

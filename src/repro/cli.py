"""Command-line interface: ``python -m repro <command>``.

Exposes the library's main workflows without writing code:

* ``models``   -- list the model zoo with capacity/table summaries;
* ``shard``    -- build a sharding plan and print (or save) it;
* ``simulate`` -- run one configuration and print latency/CPU quantiles;
* ``suite``    -- run the paper's configuration matrix and print Figure-6
  style overheads;
* ``workload`` -- co-locate several models under a chosen arrival process
  (poisson / constant / diurnal / mmpp) and print per-workload latency,
  optionally with a cache-aware correlated-stream hit-rate summary;
* ``plan``     -- closed-loop capacity planning: simulate every candidate
  sharding configuration under the mix's arrival processes, check the
  latency SLA per workload, size replicas from measured per-shard CPU
  demand, enforce per-server DRAM capacity, and print the cheapest
  feasible deployment;
* ``chaos``    -- fault-injection availability sweep: replay one
  configuration under crash/straggler/network-spike experiments at
  increasing sparse-replica counts, and report availability, SLO
  retention, and the replica count needed for a retention target;
* ``lint``     -- static determinism lint: reject RNG/replay-contract
  hazards (global-state RNG, unseeded generators, wall-clock reads,
  draws under unordered iteration, salted ``hash()``, duplicated
  substream key paths, env reads in the simulation core) before a
  sweep can silently diverge; exits 1 on findings;
* ``trace``    -- replay one request and render the Figure-3 timeline.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.analysis.caching import trace_hit_summary
from repro.chaos import (
    PLACEMENTS,
    CorrelatedFailure,
    HealingPolicy,
    HostCrash,
    NetworkSpike,
    StragglerShard,
    availability_sweep,
    format_assessment,
)
from repro.resilience import ResiliencePolicy
from repro.analysis.report import (
    CAPACITY_CANDIDATE_HEADERS,
    CAPACITY_SIZING_HEADERS,
    capacity_candidate_rows,
    capacity_sizing_rows,
    format_table,
)
from repro.core.types import GIB
from repro.lint import (
    AllowRule,
    LintConfig,
    lint_paths,
    render_json,
    render_text,
)
from repro.experiments.configs import ShardingConfiguration, build_plan
from repro.experiments.parallel import run_suite_parallel
from repro.experiments.runner import (
    mix_stream,
    run_configuration,
    run_mix_configuration,
    run_suite,
    SuiteSettings,
)
from repro.models.zoo import MODEL_FACTORIES, build
from repro.planning import CandidateSpace, CapacityPlanner, SlaPolicy
from repro.requests.generator import RequestGenerator
from repro.serving.simulator import ClusterSimulation, ServingConfig
from repro.simulation.engine import DEFAULT_KERNEL, KERNELS
from repro.sharding.plan import SINGULAR
from repro.sharding.pooling import estimate_pooling_factors
from repro.sharding.serialization import dump_plan
from repro.tracing import TraceMode
from repro.tracing.visualize import render_trace
from repro.workloads import (
    ConstantRateArrivals,
    CorrelatedStream,
    MMPPArrivals,
    PiecewiseRateArrivals,
    PoissonArrivals,
    Workload,
    WorkloadMix,
)


def _add_model_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--model", default="DRM1", choices=sorted(MODEL_FACTORIES),
        help="zoo model to operate on",
    )


def _add_trace_mode_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-mode", default=TraceMode.FULL.value,
        choices=[mode.value for mode in TraceMode],
        help="'full' materializes spans (per-shard breakdowns available); "
        "'aggregate' is the span-free fast path with identical "
        "latency/CPU/stack columns",
    )


def _trace_mode(args: argparse.Namespace) -> TraceMode:
    return TraceMode(args.trace_mode)


def _add_kernel_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--kernel", default=DEFAULT_KERNEL, choices=list(KERNELS),
        help="DES event-loop kernel: 'reference' is the heap-only loop, "
        "'batched' merges a same-timestamp deque with the heap and grants "
        "free resources synchronously, 'vectorized' replays eligible runs "
        "(serial closed-loop, chaos-free, aggregate tracing) as columnar "
        "numpy programs and falls back to 'batched' otherwise -- results "
        "are bit-identical (tests/test_kernel_equivalence.py)",
    )


def _configuration(args: argparse.Namespace) -> ShardingConfiguration:
    if args.strategy == SINGULAR:
        return ShardingConfiguration(SINGULAR)
    if args.strategy == "1-shard":
        return ShardingConfiguration("1-shard", 1)
    return ShardingConfiguration(args.strategy, args.shards)


def _add_resilience_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group(
        "resilience policy",
        "per-attempt timeouts, retries, hedging, and request deadlines for "
        "the faulted replays; leave every flag unset for the historical "
        "failover-only path (byte-identical to runs without the policy)",
    )
    group.add_argument(
        "--retry-timeout-ms", type=float, default=None,
        help="per-attempt RPC timeout in milliseconds; a timed-out attempt "
        "is replaced (budget permitting) up to --retry-max-attempts",
    )
    group.add_argument(
        "--retry-max-attempts", type=int, default=None,
        help="total attempts per RPC including the first (default 1; "
        "hedge flags imply 2)",
    )
    group.add_argument(
        "--retry-backoff-ms", type=float, default=0.0,
        help="exponential backoff base before each retry, milliseconds",
    )
    group.add_argument(
        "--retry-jitter", type=float, default=0.0,
        help="deterministic jitter fraction stretching each backoff "
        "(draws from the dedicated 'resilience' substream)",
    )
    group.add_argument(
        "--retry-budget", type=float, default=10.0,
        help="token-bucket capacity for extra attempts (anti-retry-storm)",
    )
    group.add_argument(
        "--retry-refill", type=float, default=10.0,
        help="token-bucket refill rate, tokens per simulated second",
    )
    group.add_argument(
        "--hedge-ms", type=float, default=None,
        help="issue one speculative duplicate this many milliseconds after "
        "the first send; first response wins",
    )
    group.add_argument(
        "--hedge-quantile", type=float, default=None,
        help="derive the hedge delay from this percentile of the healthy "
        "baseline's per-request embedded totals (e.g. 95)",
    )
    group.add_argument(
        "--deadline-ms", type=float, default=None,
        help="end-to-end request deadline in milliseconds; no new attempts "
        "start past it and overruns are flagged per request",
    )


def _resilience_policy(args: argparse.Namespace) -> ResiliencePolicy | None:
    """Build the policy from CLI flags; ``None`` when no flag was set."""
    hedging = args.hedge_ms is not None or args.hedge_quantile is not None
    if (
        args.retry_timeout_ms is None
        and args.retry_max_attempts is None
        and args.deadline_ms is None
        and not hedging
    ):
        return None
    max_attempts = args.retry_max_attempts
    if max_attempts is None:
        # Hedging needs a second attempt to issue; a bare timeout or
        # deadline changes accounting but not the attempt cap.
        max_attempts = 2 if hedging else 1
    return ResiliencePolicy(
        rpc_timeout=(
            args.retry_timeout_ms / 1e3
            if args.retry_timeout_ms is not None else None
        ),
        max_attempts=max_attempts,
        backoff_base=args.retry_backoff_ms / 1e3,
        backoff_jitter=args.retry_jitter,
        hedge_delay=args.hedge_ms / 1e3 if args.hedge_ms is not None else None,
        hedge_quantile=args.hedge_quantile,
        deadline=(
            args.deadline_ms / 1e3 if args.deadline_ms is not None else None
        ),
        retry_budget=args.retry_budget,
        retry_refill_rate=args.retry_refill,
    )


def _add_domain_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--domains", type=int, default=1,
        help="fault domains to place sparse replicas across (racks/zones); "
        "1 disables domain-aware placement",
    )
    parser.add_argument(
        "--placement", default="spread", choices=list(PLACEMENTS),
        help="'spread' stripes a shard's replicas across domains so one "
        "domain crash leaves survivors; 'packed' fills domain-by-domain",
    )


def cmd_models(args: argparse.Namespace) -> int:
    rows = []
    for name in sorted(MODEL_FACTORIES):
        model = build(name)
        pooling = model.expected_pooling_per_net()
        rows.append(
            (
                name,
                len(model.tables),
                round(model.sparse_bytes / GIB, 2),
                round(model.largest_table_bytes / GIB, 2),
                len(model.nets),
                round(sum(pooling.values()), 1),
            )
        )
    print(
        format_table(
            ["model", "tables", "sparse GiB", "largest GiB", "nets", "ids/request"],
            rows,
            title="Model zoo",
        )
    )
    return 0


def cmd_shard(args: argparse.Namespace) -> int:
    model = build(args.model)
    pooling = estimate_pooling_factors(model, num_requests=args.pooling_requests)
    plan = build_plan(model, _configuration(args), pooling)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(dump_plan(plan))
        print(f"wrote {plan.label} plan to {args.output}")
        return 0
    rows = [
        (
            shard.index + 1,
            round(shard.capacity_bytes(model) / GIB, 2),
            len(shard.assignments),
            ", ".join(sorted(shard.nets_present(model))),
        )
        for shard in plan.shards
    ]
    print(
        format_table(
            ["shard", "capacity GiB", "tables", "nets"],
            rows,
            title=f"{model.name}: {plan.label}",
        )
    )
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    model = build(args.model)
    pooling = estimate_pooling_factors(model, num_requests=args.pooling_requests)
    plan = build_plan(model, _configuration(args), pooling)
    requests = RequestGenerator(model, seed=args.seed).generate_many(args.requests)
    result = run_configuration(
        model, plan, requests,
        ServingConfig(
            seed=args.seed, trace_mode=_trace_mode(args), kernel=args.kernel
        ),
    )
    rows = [
        (
            f"P{q}",
            round(float(np.percentile(result.e2e, q)) * 1e3, 3),
            round(float(np.percentile(result.cpu, q)) * 1e3, 3),
        )
        for q in (50, 90, 99)
    ]
    print(
        format_table(
            ["quantile", "E2E latency (ms)", "aggregate CPU (ms)"],
            rows,
            title=f"{model.name} / {plan.label} ({args.requests} serial requests)",
        )
    )
    return 0


def cmd_suite(args: argparse.Namespace) -> int:
    model = build(args.model)
    settings = SuiteSettings(
        num_requests=args.requests,
        serving=ServingConfig(seed=args.seed),
        trace_mode=_trace_mode(args),
        kernel=args.kernel,
    )

    def sweep():
        if args.parallel or args.workers is not None:
            return run_suite_parallel(model, settings, max_workers=args.workers)
        return run_suite(model, settings)

    if getattr(args, "profile", False):
        import cProfile
        import pstats
        import time

        profiler = cProfile.Profile()
        start = time.perf_counter()  # detlint: disable=DET003 -- profiling host wall time, not simulated time
        profiler.enable()
        try:
            results = sweep()
        finally:
            profiler.disable()
        elapsed = time.perf_counter() - start  # detlint: disable=DET003 -- profiling host wall time, not simulated time
        print(f"[profile] sweep wall time {elapsed:.2f}s", file=sys.stderr)
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative").print_stats(25)
    else:
        results = sweep()
    base = results[SINGULAR]
    rows = []
    for label, result in results.items():
        if label == SINGULAR:
            continue
        row = [label]
        for q in (50, 99):
            overhead = (
                np.percentile(result.e2e, q) - np.percentile(base.e2e, q)
            ) / np.percentile(base.e2e, q)
            row.append(f"{overhead:+.1%}")
        cpu = (
            np.percentile(result.cpu, 50) - np.percentile(base.cpu, 50)
        ) / np.percentile(base.cpu, 50)
        row.append(f"{cpu:+.1%}")
        rows.append(tuple(row))
    print(
        format_table(
            ["configuration", "P50 latency", "P99 latency", "P50 compute"],
            rows,
            title=f"{model.name} overheads vs singular ({args.requests} requests)",
        )
    )
    return 0


def _arrival_process(args: argparse.Namespace, index: int):
    """One workload's arrival process; seeds are offset per workload so
    co-located streams are independent."""
    seed = args.seed + index
    if args.arrivals == "poisson":
        return PoissonArrivals(args.qps, seed=seed)
    if args.arrivals == "constant":
        return ConstantRateArrivals(args.qps)
    if args.arrivals == "diurnal":
        return PiecewiseRateArrivals.diurnal(
            args.qps, trough_fraction=args.trough_fraction,
            hours=args.hours, seed=seed,
        )
    return MMPPArrivals(
        (args.qps / 2.0, 2.0 * args.qps),
        mean_dwell_seconds=args.dwell_seconds, seed=seed,
    )


def cmd_workload(args: argparse.Namespace) -> int:
    workloads = []
    for index, name in enumerate(args.models):
        workloads.append(
            Workload(
                name=f"{name.lower()}-{index}" if args.models.count(name) > 1 else name,
                model=build(name),
                arrivals=_arrival_process(args, index),
                request_seed=args.seed + index,
                # Seeded per workload (like arrivals and requests) so
                # co-located tenants draw independent id streams.
                id_stream=(
                    CorrelatedStream(
                        recency_weight=args.recency_weight, seed=args.seed + index
                    )
                    if args.cache_summary
                    else None
                ),
            )
        )
    mix = WorkloadMix(tuple(workloads))
    settings = SuiteSettings(
        num_requests=args.requests,
        pooling_requests=args.pooling_requests,
        serving=ServingConfig(seed=args.seed),
        trace_mode=_trace_mode(args),
        kernel=args.kernel,
    )
    stream = mix_stream(mix, settings)
    plans = [
        build_plan(
            workload.model,
            _configuration(args),
            estimate_pooling_factors(
                workload.model, num_requests=settings.pooling_requests,
                seed=settings.pooling_seed,
            ),
        )
        for workload in mix.workloads
    ]
    result = run_mix_configuration(
        mix, plans, stream, settings.resolved_serving()
    )
    rows = []
    per_workload = result.per_workload_e2e()
    for workload, plan in zip(mix.workloads, plans):
        latencies = per_workload[workload.name]
        rows.append(
            (
                workload.name,
                workload.model.name,
                plan.label,
                len(latencies),
                round(float(np.percentile(latencies, 50)) * 1e3, 3),
                round(float(np.percentile(latencies, 99)) * 1e3, 3),
            )
        )
    rows.append(
        (
            "all", "-", "-", len(result),
            round(float(np.percentile(result.e2e, 50)) * 1e3, 3),
            round(float(np.percentile(result.e2e, 99)) * 1e3, 3),
        )
    )
    print(
        format_table(
            ["workload", "model", "plan", "requests", "P50 (ms)", "P99 (ms)"],
            rows,
            title=(
                f"co-located {'+'.join(w.model.name for w in mix.workloads)} "
                f"under {args.arrivals} arrivals ({args.qps} QPS peak)"
            ),
        )
    )
    if args.cache_summary:
        cache_rows = []
        for name, trace in mix.access_traces(stream).items():
            summary = trace_hit_summary(trace, cache_fraction=args.cache_fraction)
            cache_rows.append(
                (name, trace.total_accesses(), round(summary["overall"], 3))
            )
        print()
        print(
            format_table(
                ["workload", "accesses", "LRU hit rate"],
                cache_rows,
                title=(
                    f"correlated-stream cache summary "
                    f"(LRU at {args.cache_fraction:.0%} of working set)"
                ),
            )
        )
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    workloads = []
    for index, name in enumerate(args.models):
        workloads.append(
            Workload(
                name=f"{name.lower()}-{index}" if args.models.count(name) > 1 else name,
                model=build(name),
                arrivals=_arrival_process(args, index),
                request_seed=args.seed + index,
            )
        )
    mix = WorkloadMix(tuple(workloads))
    planner = CapacityPlanner(
        policy=SlaPolicy(args.target_ms / 1e3) if args.target_ms else None,
        space=CandidateSpace(utilization_targets=tuple(args.utilization)),
        settings=SuiteSettings(
            num_requests=args.requests,
            pooling_requests=args.pooling_requests,
            serving=ServingConfig(seed=args.seed),
            trace_mode=_trace_mode(args),
            kernel=args.kernel,
        ),
        slack=args.slack,
    )
    plan = planner.plan(
        mix,
        parallel=args.parallel or args.workers is not None,
        max_workers=args.workers,
    )
    print(
        f"SLA window: {plan.policy.target_latency * 1e3:.3f} ms "
        + ("(explicit)" if args.target_ms else f"(singular P99 x {args.slack})")
    )
    print(
        format_table(
            CAPACITY_CANDIDATE_HEADERS,
            capacity_candidate_rows(plan.candidates),
            title=(
                f"closed-loop search: {'+'.join(w.model.name for w in mix.workloads)} "
                f"under {args.arrivals} arrivals (sizing peaks: "
                + ", ".join(
                    f"{w.arrivals.peak_rate():g} QPS" for w in mix.workloads
                )
                + ")"
            ),
        )
    )
    if not plan.feasible:
        print("\nno feasible deployment: no candidate meets the SLA within DRAM capacity")
        return 1
    chosen = plan.chosen
    print(
        f"\nchosen: {chosen.label} at {chosen.utilization_target:.0%} utilization "
        f"-- {chosen.total_servers} servers, "
        f"{chosen.total_memory_bytes / GIB:.1f} GiB pinned"
    )
    print(
        format_table(
            CAPACITY_SIZING_HEADERS,
            capacity_sizing_rows(chosen.workloads),
            title="per-workload sizing (label-column demand, own sharding plan)",
        )
    )
    if args.assess_availability:
        if args.domains > 1:
            experiments: tuple = (
                CorrelatedFailure(domain=0, at=args.crash_at),
            )
        else:
            experiments = (HostCrash(shard=0, at=args.crash_at),)
        assessment = planner.assess_availability(
            mix,
            chosen,
            experiments,
            tuple(args.assess_replicas),
            domains=args.domains,
            placement=args.placement,
            policy=_resilience_policy(args),
            parallel=args.parallel or args.workers is not None,
            max_workers=args.workers,
        )
        print(
            "\navailability assessment under "
            + ", ".join(type(e).__name__ for e in experiments)
            + ":"
        )
        print("\n".join(format_assessment(assessment)))
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    model = build(args.model)
    workload = Workload(
        name=args.model.lower(),
        model=model,
        arrivals=_arrival_process(args, 0),
        request_seed=args.seed,
    )
    experiments = []
    if not args.no_crash:
        experiments.append(
            HostCrash(
                shard=args.crash_shard,
                at=args.crash_at,
                restart_after=args.restart_after,
            )
        )
    if args.straggler is not None:
        shard, start, duration, multiplier = args.straggler
        experiments.append(
            StragglerShard(
                shard=int(shard), start=start, duration=duration,
                multiplier=multiplier,
            )
        )
    if args.spike is not None:
        start, duration, extra_ms = args.spike
        experiments.append(
            NetworkSpike(start=start, duration=duration, extra_latency=extra_ms / 1e3)
        )
    if args.correlated_domain is not None:
        experiments.append(
            CorrelatedFailure(
                domain=args.correlated_domain,
                at=args.correlated_at,
                restart_after=args.correlated_restart,
                stagger=args.correlated_stagger,
            )
        )
    healing = (
        HealingPolicy(
            check_interval=args.check_interval,
            consecutive_misses=args.misses,
            recovery_lag=args.recovery_lag,
        )
        if args.heal
        else None
    )
    assessment = availability_sweep(
        workload,
        _configuration(args),
        tuple(experiments),
        tuple(args.replicas),
        healing=healing,
        domains=args.domains,
        placement=args.placement,
        policy=_resilience_policy(args),
        settings=SuiteSettings(
            num_requests=args.requests,
            pooling_requests=args.pooling_requests,
            serving=ServingConfig(seed=args.seed),
            trace_mode=_trace_mode(args),
            kernel=args.kernel,
        ),
        slo_latency=args.slo_ms / 1e3 if args.slo_ms else None,
        slo_slack=args.slack,
        window=args.window,
        parallel=args.parallel or args.workers is not None,
        max_workers=args.workers,
    )
    title = (
        f"chaos sweep: {model.name} / {_configuration(args).label} under "
        + ", ".join(type(experiment).__name__ for experiment in experiments)
        + (" with healing" if healing else "")
    )
    lines = [title, ""]
    lines.extend(format_assessment(assessment))
    report = "\n".join(lines) + "\n"
    print(report, end="")
    if args.report:
        with open(args.report, "w") as handle:
            handle.write(report)
        print(f"\nwrote availability report to {args.report}")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    config = LintConfig(allowlist=()) if args.no_default_allow else LintConfig()
    if args.allow:
        config = config.with_extra(
            tuple(AllowRule.parse(spec) for spec in args.allow)
        )
    report = lint_paths(args.paths, config)
    rendered = (
        render_json(report) if args.format == "json" else render_text(report)
    )
    print(rendered)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(rendered)
            handle.write("\n")
        print(f"wrote lint report to {args.output}", file=sys.stderr)
    return 1 if report.findings else 0


def cmd_trace(args: argparse.Namespace) -> int:
    model = build(args.model)
    pooling = estimate_pooling_factors(model, num_requests=args.pooling_requests)
    plan = build_plan(model, _configuration(args), pooling)
    request = RequestGenerator(model, seed=args.seed).generate(args.request_id)
    cluster = ClusterSimulation(model, plan, ServingConfig(seed=args.seed))
    cluster.run_serial([request])
    print(render_trace(cluster.tracer.for_request(request.request_id), width=args.width))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Capacity-driven scale-out recommendation inference (ISPASS 2021 reproduction)",
        epilog="Every verb above replays deterministically: identical "
        "inputs give byte-identical results across serial/parallel "
        "sweeps, trace modes, and chaos baselines (the contract in "
        "repro/core/rng.py).  'repro lint' enforces that contract "
        "statically -- run it (like CI does, next to 'repro plan' and "
        "'repro chaos' smokes) before landing changes to simulation, "
        "serving, or chaos code.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("models", help="list the model zoo").set_defaults(func=cmd_models)

    def add_plan_arguments(sub: argparse.ArgumentParser) -> None:
        _add_model_argument(sub)
        sub.add_argument(
            "--strategy", default="load-bal",
            choices=[SINGULAR, "1-shard", "load-bal", "cap-bal", "NSBP"],
        )
        sub.add_argument("--shards", type=int, default=8)
        sub.add_argument("--pooling-requests", type=int, default=300)
        sub.add_argument("--seed", type=int, default=1)

    shard = commands.add_parser("shard", help="build and print a sharding plan")
    add_plan_arguments(shard)
    shard.add_argument("--output", help="write the plan as JSON to this path")
    shard.set_defaults(func=cmd_shard)

    simulate = commands.add_parser("simulate", help="simulate one configuration")
    add_plan_arguments(simulate)
    simulate.add_argument("--requests", type=int, default=150)
    _add_trace_mode_argument(simulate)
    _add_kernel_argument(simulate)
    simulate.set_defaults(func=cmd_simulate)

    suite = commands.add_parser("suite", help="run the paper's config matrix")
    _add_model_argument(suite)
    suite.add_argument("--requests", type=int, default=120)
    suite.add_argument("--seed", type=int, default=1)
    _add_trace_mode_argument(suite)
    _add_kernel_argument(suite)
    suite.add_argument(
        "--parallel", action="store_true",
        help="fan configurations out over worker processes "
        "(identical results to the serial sweep)",
    )
    suite.add_argument(
        "--workers", type=int, default=None,
        help="worker-process cap; implies --parallel (default: CPU count "
        "or REPRO_SWEEP_WORKERS)",
    )
    suite.add_argument(
        "--profile", action="store_true",
        help="profile the sweep with cProfile and print the top 25 "
        "functions by cumulative time to stderr (results are unchanged; "
        "profiling only observes the host process)",
    )
    suite.set_defaults(func=cmd_suite)

    workload = commands.add_parser(
        "workload",
        help="co-locate models under a chosen arrival process",
        description="Run a multi-model workload mix on one shared simulated "
        "cluster: each model gets its own sharding plan, requests "
        "interleave by merged arrival order, and contention between the "
        "models is simulated on shared hosts.  Prints per-workload and "
        "overall latency quantiles.",
    )
    def add_mix_arguments(sub: argparse.ArgumentParser) -> None:
        """Multi-model + arrival-process arguments shared by the workload
        and plan commands."""
        sub.add_argument(
            "--models", nargs="+", default=["DRM1", "DRM2"],
            choices=sorted(MODEL_FACTORIES),
            help="one workload per named model (repeat a name to co-locate "
            "two instances of the same model)",
        )
        sub.add_argument(
            "--arrivals", default="diurnal",
            choices=["poisson", "constant", "diurnal", "mmpp"],
            help="arrival process per workload: 'poisson' fixed-QPS open loop, "
            "'constant' deterministic gaps, 'diurnal' non-homogeneous Poisson "
            "over the sinusoidal day curve, 'mmpp' bursty Markov-modulated "
            "Poisson alternating qps/2 and 2*qps states",
        )
        sub.add_argument(
            "--qps", type=float, default=40.0,
            help="rate per workload: the fixed/constant rate, the diurnal peak, "
            "or the MMPP anchor rate",
        )
        sub.add_argument(
            "--trough-fraction", type=float, default=0.35,
            help="diurnal trough as a fraction of peak QPS",
        )
        sub.add_argument(
            "--hours", type=int, default=24, help="length of the diurnal curve"
        )
        sub.add_argument(
            "--dwell-seconds", type=float, default=60.0,
            help="mean MMPP state dwell time",
        )

    add_mix_arguments(workload)
    workload.add_argument(
        "--strategy", default="load-bal",
        choices=[SINGULAR, "1-shard", "load-bal", "cap-bal", "NSBP"],
        help="sharding strategy applied to every workload's model",
    )
    workload.add_argument("--shards", type=int, default=4)
    workload.add_argument(
        "--requests", type=int, default=120, help="request count per workload"
    )
    workload.add_argument("--pooling-requests", type=int, default=300)
    workload.add_argument("--seed", type=int, default=1)
    _add_trace_mode_argument(workload)
    _add_kernel_argument(workload)
    workload.add_argument(
        "--cache-summary", action="store_true",
        help="also emit each workload's temporally-correlated "
        "(popularity + recency) sparse-ID stream and print its LRU "
        "cache hit rates",
    )
    workload.add_argument(
        "--cache-fraction", type=float, default=0.10,
        help="cache size for --cache-summary, as a fraction of each "
        "table's observed working set",
    )
    workload.add_argument(
        "--recency-weight", type=float, default=0.3,
        help="probability an access re-references a recently touched row "
        "(--cache-summary streams)",
    )
    workload.set_defaults(func=cmd_workload)

    plan = commands.add_parser(
        "plan",
        help="closed-loop SLA-driven capacity planning over a workload mix",
        description="Search the deployment space (sharding configuration x "
        "utilization target) for the cheapest deployment that meets a "
        "latency SLA: each candidate is simulated under the mix's arrival "
        "processes (co-location contention included), checked per workload "
        "against the SLA, sized from measured per-shard CPU demand, and "
        "required to fit every server's pinned bytes in platform DRAM.  "
        "Exits 1 when no candidate qualifies.",
    )
    add_mix_arguments(plan)
    plan.add_argument(
        "--requests", type=int, default=60, help="request count per workload"
    )
    plan.add_argument("--pooling-requests", type=int, default=300)
    plan.add_argument("--seed", type=int, default=1)
    _add_trace_mode_argument(plan)
    _add_kernel_argument(plan)
    plan.add_argument(
        "--target-ms", type=float, default=None,
        help="explicit SLA window in milliseconds; default derives it from "
        "the mix's own singular baseline (P99 x slack)",
    )
    plan.add_argument(
        "--slack", type=float, default=1.5,
        help="headroom multiplier for the derived SLA window (ignored with "
        "--target-ms)",
    )
    plan.add_argument(
        "--utilization", nargs="+", type=float, default=[0.4, 0.6, 0.8],
        help="candidate utilization ceilings, headroom-first (ties resolve "
        "toward the first listed)",
    )
    plan.add_argument(
        "--parallel", action="store_true",
        help="evaluate candidate configurations over worker processes "
        "(identical plan to the serial search)",
    )
    plan.add_argument(
        "--workers", type=int, default=None,
        help="worker-process cap; implies --parallel",
    )
    plan.add_argument(
        "--assess-availability", action="store_true",
        help="after choosing a plan, re-simulate it under a chaos suite "
        "(a correlated domain crash with --domains > 1, a host crash "
        "otherwise) and report replicas-for-N-nines sizing",
    )
    plan.add_argument(
        "--assess-replicas", nargs="+", type=int, default=[1, 2, 3],
        help="sparse replica counts the availability assessment sweeps",
    )
    plan.add_argument(
        "--crash-at", type=float, default=0.1,
        help="fault time (simulated seconds) for the assessment suite",
    )
    _add_domain_arguments(plan)
    _add_resilience_arguments(plan)
    plan.set_defaults(func=cmd_plan)

    chaos = commands.add_parser(
        "chaos",
        help="fault-injection availability sweep over replica counts",
        description="Replay one sharded configuration under a deterministic "
        "fault suite (host crash, straggler shard, network spike) at "
        "increasing sparse-replica counts.  Each request ends ok (full, "
        "in-SLO), slow, degraded (dense-only partial result), or failed; "
        "the sweep reports availability and SLO retention per replica "
        "count, the replica count needed for the retention targets, and "
        "the crash/heal timeline.",
    )
    _add_model_argument(chaos)
    chaos.add_argument(
        "--strategy", default="load-bal",
        choices=["1-shard", "load-bal", "cap-bal", "NSBP"],
        help="sharding strategy (chaos needs remote sparse shards, so "
        "singular is excluded)",
    )
    chaos.add_argument("--shards", type=int, default=4)
    chaos.add_argument("--pooling-requests", type=int, default=300)
    chaos.add_argument("--requests", type=int, default=120)
    chaos.add_argument("--seed", type=int, default=1)
    chaos.add_argument(
        "--arrivals", default="poisson",
        choices=["poisson", "constant", "diurnal", "mmpp"],
    )
    chaos.add_argument("--qps", type=float, default=80.0)
    chaos.add_argument("--trough-fraction", type=float, default=0.35)
    chaos.add_argument("--hours", type=int, default=24)
    chaos.add_argument("--dwell-seconds", type=float, default=60.0)
    chaos.add_argument(
        "--replicas", nargs="+", type=int, default=[1, 2, 3],
        help="sparse replica counts to sweep",
    )
    chaos.add_argument(
        "--crash-shard", type=int, default=0,
        help="shard whose replica 0 crashes (see --no-crash)",
    )
    chaos.add_argument(
        "--crash-at", type=float, default=0.1,
        help="crash time in simulated seconds",
    )
    chaos.add_argument(
        "--restart-after", type=float, default=None,
        help="bring the crashed host back after this many seconds "
        "(default: stays down)",
    )
    chaos.add_argument(
        "--no-crash", action="store_true",
        help="drop the default host-crash experiment",
    )
    chaos.add_argument(
        "--straggler", nargs=4, type=float, default=None,
        metavar=("SHARD", "START", "DURATION", "MULT"),
        help="slow one shard's service times by MULT over [START, START+DURATION)",
    )
    chaos.add_argument(
        "--spike", nargs=3, type=float, default=None,
        metavar=("START", "DURATION", "EXTRA_MS"),
        help="add EXTRA_MS one-way latency to every RPC over [START, START+DURATION)",
    )
    chaos.add_argument(
        "--correlated-domain", type=int, default=None,
        help="crash every host in this fault domain at --correlated-at "
        "(requires --domains > 1 to be interesting)",
    )
    chaos.add_argument(
        "--correlated-at", type=float, default=0.1,
        help="correlated-failure time in simulated seconds",
    )
    chaos.add_argument(
        "--correlated-restart", type=float, default=None,
        help="bring the crashed domain back after this many seconds",
    )
    chaos.add_argument(
        "--correlated-stagger", type=float, default=0.0,
        help="spread the per-host crash instants over this window "
        "(deterministic draws from the chaos/correlated substream)",
    )
    _add_domain_arguments(chaos)
    _add_resilience_arguments(chaos)
    chaos.add_argument(
        "--heal", action="store_true",
        help="run the self-healing controller (heartbeat detection + "
        "re-replication)",
    )
    chaos.add_argument("--check-interval", type=float, default=0.05)
    chaos.add_argument("--misses", type=int, default=2)
    chaos.add_argument("--recovery-lag", type=float, default=0.25)
    chaos.add_argument(
        "--slo-ms", type=float, default=None,
        help="explicit latency SLO in milliseconds (default: healthy p99 "
        "x --slack)",
    )
    chaos.add_argument("--slack", type=float, default=1.5)
    chaos.add_argument(
        "--window", type=float, default=0.5,
        help="availability-timeline bin width in seconds",
    )
    _add_trace_mode_argument(chaos)
    _add_kernel_argument(chaos)
    chaos.add_argument(
        "--parallel", action="store_true",
        help="fan replica counts out over worker processes "
        "(byte-identical to the serial sweep)",
    )
    chaos.add_argument("--workers", type=int, default=None)
    chaos.add_argument(
        "--report", default=None,
        help="also write the availability report to this path",
    )
    chaos.set_defaults(func=cmd_chaos)

    lint = commands.add_parser(
        "lint",
        help="statically enforce the determinism contract (exit 1 on findings)",
        description="AST-based determinism lint over the given files or "
        "directories.  Rules DET001-DET007 reject RNG/replay-contract "
        "hazards: global-state RNG (DET001), unseeded generators "
        "(DET002), wall-clock reads (DET003), draws under unordered "
        "iteration (DET004), salted hash() in seed derivation (DET005), "
        "duplicated constant substream key paths across the whole linted "
        "tree (DET006), and os.environ reads inside the simulation core "
        "(DET007).  Silence a finding with a path-scoped allowlist entry "
        "or an inline '# detlint: disable=DETnnn -- <reason>' comment; "
        "the reason is mandatory.",
    )
    lint.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--format", default="text", choices=["text", "json"],
        help="report format ('json' is the versioned CI-artifact form)",
    )
    lint.add_argument(
        "--output", default=None,
        help="also write the report to this path",
    )
    lint.add_argument(
        "--allow", action="append", default=None, metavar="DETnnn:GLOB",
        help="extra allowlist entry, e.g. DET003:benchmarks/* (repeatable)",
    )
    lint.add_argument(
        "--no-default-allow", action="store_true",
        help="drop the built-in allowlist (DET003 under benchmarks/*)",
    )
    lint.set_defaults(func=cmd_lint)

    trace = commands.add_parser("trace", help="render one request's trace")
    add_plan_arguments(trace)
    trace.add_argument("--request-id", type=int, default=0)
    trace.add_argument("--width", type=int, default=96)
    trace.set_defaults(func=cmd_trace)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

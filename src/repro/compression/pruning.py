"""Embedding-row pruning (paper Section VII-D).

Production tables are "manually pruned as specified by the model architect
based on a threshold magnitude or training update frequency".  Both modes
are implemented over materialized weights:

* magnitude pruning keeps the rows with the largest L2 norms;
* frequency pruning keeps the most-accessed rows given an access count
  vector (e.g. from an offline embedding-access trace, the methodology the
  paper points at via Bandana).

Pruned rows collapse into a shared zero row, so lookups remain valid.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class PrunedTable:
    """A pruned weight matrix plus the surviving-row mapping."""

    weights: np.ndarray
    kept_rows: np.ndarray  # original indices of surviving rows

    @property
    def num_rows(self) -> int:
        return self.weights.shape[0]


def _keep(weights: np.ndarray, scores: np.ndarray, keep_fraction: float) -> PrunedTable:
    if not 0.0 < keep_fraction <= 1.0:
        raise ValueError("keep_fraction must be in (0, 1]")
    num_rows = weights.shape[0]
    kept = max(1, int(round(num_rows * keep_fraction)))
    order = np.argsort(-scores, kind="stable")[:kept]
    kept_rows = np.sort(order)
    return PrunedTable(weights=weights[kept_rows], kept_rows=kept_rows)


def prune_by_magnitude(weights: np.ndarray, keep_fraction: float) -> PrunedTable:
    """Keep the ``keep_fraction`` of rows with the largest L2 norm."""
    weights = np.asarray(weights, dtype=np.float32)
    return _keep(weights, np.linalg.norm(weights, axis=1), keep_fraction)


def prune_by_frequency(
    weights: np.ndarray, access_counts: np.ndarray, keep_fraction: float
) -> PrunedTable:
    """Keep the most frequently accessed rows."""
    weights = np.asarray(weights, dtype=np.float32)
    counts = np.asarray(access_counts, dtype=float)
    if counts.shape[0] != weights.shape[0]:
        raise ValueError("access_counts must have one entry per row")
    return _keep(weights, counts, keep_fraction)


def remap_ids(pruned: PrunedTable, ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Map original row ids onto the pruned table.

    Returns ``(local_ids, survived_mask)``: ids of pruned rows are dropped
    (they pool to the implicit zero row).
    """
    ids = np.asarray(ids, dtype=np.int64)
    position = np.full(int(pruned.kept_rows.max(initial=0)) + 1, -1, dtype=np.int64)
    position[pruned.kept_rows] = np.arange(pruned.num_rows)
    in_range = ids < position.shape[0]
    local = np.where(in_range, position[np.clip(ids, 0, position.shape[0] - 1)], -1)
    mask = local >= 0
    return local[mask], mask

"""Model compression: row-wise quantization, pruning, size accounting."""

from repro.compression.pipeline import (
    CompressionReport,
    CompressionSpec,
    compress_model,
    compress_table_config,
)
from repro.compression.pruning import (
    PrunedTable,
    prune_by_frequency,
    prune_by_magnitude,
    remap_ids,
)
from repro.compression.quantization import (
    QuantizedRows,
    dequantize_rows,
    quantization_error_bound,
    quantize_rows,
)

__all__ = [
    "CompressionReport",
    "CompressionSpec",
    "PrunedTable",
    "QuantizedRows",
    "compress_model",
    "compress_table_config",
    "dequantize_rows",
    "prune_by_frequency",
    "prune_by_magnitude",
    "quantization_error_bound",
    "quantize_rows",
    "remap_ids",
]

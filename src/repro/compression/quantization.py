"""Row-wise linear quantization of embedding tables (paper Section VII-D).

The paper's compressed models use row-wise linear quantization: every
table row stores ``(2^bits - 1)`` uniform levels between its own min and
max, plus an fp16 scale/bias pair.  This module implements the real
transform over materialized weights (with provable error bounds, tested
property-style) and is also used by the metadata-level size accounting in
:mod:`repro.compression.pipeline`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class QuantizedRows:
    """Row-wise quantized weights: codes + per-row scale/bias."""

    codes: np.ndarray  # uint8, one code per element (values < 2^bits)
    scale: np.ndarray  # float32 per row
    bias: np.ndarray  # float32 per row
    bits: int

    @property
    def num_rows(self) -> int:
        return self.codes.shape[0]

    @property
    def dim(self) -> int:
        return self.codes.shape[1]

    @property
    def nbytes(self) -> float:
        """Packed storage size: codes at ``bits`` each + fp16 scale/bias."""
        return self.num_rows * (self.dim * self.bits / 8.0 + 4.0)


def quantize_rows(weights: np.ndarray, bits: int) -> QuantizedRows:
    """Quantize each row to ``bits``-bit uniform levels over its range."""
    if bits not in (4, 8):
        raise ValueError(f"unsupported quantization width: {bits}")
    weights = np.asarray(weights, dtype=np.float32)
    if weights.ndim != 2:
        raise ValueError("weights must be 2-D (rows x dim)")
    levels = (1 << bits) - 1
    lo = weights.min(axis=1, keepdims=True)
    hi = weights.max(axis=1, keepdims=True)
    span = np.maximum(hi - lo, 1e-12)
    scale = (span / levels).astype(np.float32)
    codes = np.clip(np.round((weights - lo) / scale), 0, levels).astype(np.uint8)
    return QuantizedRows(
        codes=codes,
        scale=scale.reshape(-1),
        bias=lo.reshape(-1).astype(np.float32),
        bits=bits,
    )


def dequantize_rows(quantized: QuantizedRows) -> np.ndarray:
    """Reconstruct float32 weights from quantized rows."""
    return (
        quantized.codes.astype(np.float32) * quantized.scale[:, None]
        + quantized.bias[:, None]
    )


def quantization_error_bound(weights: np.ndarray, bits: int) -> np.ndarray:
    """Per-row worst-case absolute error of row-wise linear quantization.

    Uniform rounding error is at most half a level: ``span / levels / 2``.
    """
    weights = np.asarray(weights, dtype=np.float32)
    span = weights.max(axis=1) - weights.min(axis=1)
    return span / ((1 << bits) - 1) / 2.0 + 1e-6

"""Model-level compression pipeline and size accounting (Table III).

Reproduces the paper's production compression recipe: "All tables were
row-wise linear quantized to at least 8-bits, and sufficiently large
tables were quantized to 4-bits.  Tables were manually pruned ... based on
a threshold magnitude or training update frequency."  The pipeline

* rewrites a model config's table dtypes/row counts (full-scale size
  accounting -- no 200 GB allocations), and
* compresses materialized tables for real (quantize + prune), for the
  numeric fidelity tests.

The paper's headline: DRM1 shrinks 5.56x (194.46 GB -> 35 GB) yet still
cannot fit commodity ~50 GB servers -- compression alone is insufficient.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.types import GIB, DType
from repro.models.config import ModelConfig, TableConfig


@dataclass(frozen=True)
class CompressionSpec:
    """Recipe knobs, defaulted to reproduce the paper's 5.56x on DRM1."""

    int4_threshold_bytes: float = 1.5 * GIB
    """Tables at least this large are quantized to 4 bits ("sufficiently
    large tables"); smaller ones get 8 bits."""

    prune_threshold_bytes: float = 0.50 * GIB
    """Tables at least this large are pruned (cold rows dropped)."""

    prune_keep_fraction: float = 0.72
    """Fraction of rows surviving pruning on prunable tables."""


@dataclass
class CompressionReport:
    """Before/after accounting for one compressed model."""

    model_name: str
    uncompressed_bytes: float
    compressed_bytes: float
    tables_int8: int = 0
    tables_int4: int = 0
    tables_pruned: int = 0
    per_table: dict[str, tuple[float, float]] = field(default_factory=dict)

    @property
    def ratio(self) -> float:
        return self.uncompressed_bytes / self.compressed_bytes

    def fits_servers(self, usable_dram: float) -> int:
        """How many ``usable_dram``-sized servers the compressed model
        still needs (the paper uses ~50 GB usable DRAM per web server)."""
        import math

        return max(1, math.ceil(self.compressed_bytes / usable_dram))


def compress_table_config(table: TableConfig, spec: CompressionSpec) -> TableConfig:
    """Metadata-level compression of one table."""
    dtype = DType.INT4 if table.nbytes >= spec.int4_threshold_bytes else DType.INT8
    num_rows = table.num_rows
    if table.nbytes >= spec.prune_threshold_bytes:
        num_rows = max(1, int(round(num_rows * spec.prune_keep_fraction)))
    return TableConfig(
        name=table.name,
        net=table.net,
        num_rows=num_rows,
        dim=table.dim,
        dtype=dtype,
        scope=table.scope,
        activation_prob=table.activation_prob,
        mean_ids=table.mean_ids,
        deterministic_ids=table.deterministic_ids,
    )


def compress_model(
    model: ModelConfig, spec: CompressionSpec | None = None
) -> tuple[ModelConfig, CompressionReport]:
    """Compress a model config; returns the new config and the report.

    The compressed model keeps its request profile and dense nets: lookup
    counts are unchanged (pruned rows collapse to a shared zero row), so
    serving behaviour is directly comparable -- exactly the paper's
    Table III methodology.
    """
    spec = spec or CompressionSpec()
    report = CompressionReport(
        model_name=model.name,
        uncompressed_bytes=model.total_bytes,
        compressed_bytes=model.dense_param_bytes,
    )
    compressed_tables = []
    for table in model.tables:
        new_table = compress_table_config(table, spec)
        compressed_tables.append(new_table)
        report.compressed_bytes += new_table.nbytes
        report.per_table[table.name] = (table.nbytes, new_table.nbytes)
        if new_table.dtype is DType.INT4:
            report.tables_int4 += 1
        else:
            report.tables_int8 += 1
        if new_table.num_rows < table.num_rows:
            report.tables_pruned += 1
    compressed = ModelConfig(
        name=f"{model.name}-compressed",
        nets=model.nets,
        tables=tuple(compressed_tables),
        profile=model.profile,
        dense_param_bytes=model.dense_param_bytes,
    )
    return compressed, report

"""Synthetic embedding-table populations.

The paper's DRM1/DRM2/DRM3 are production snapshots; we rebuild their
*statistical shape* instead (Section V-A, Figure 5):

* DRM1/DRM2: long-tailed table-size distributions (lognormal) with a known
  total capacity and largest-table cap;
* DRM3: one table dominating >89% of capacity, plus a small remainder;
* per-table request sparsity (activation probability, ids-per-presence)
  drawn so that net-level pooling-factor totals match Table II's relative
  magnitudes (user net >> content net).

All draws come from named substreams of a root seed, so a model zoo entry
is a pure function of its parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.rng import substream
from repro.core.types import DType
from repro.models.config import FeatureScope, TableConfig

#: Embedding dimensions sampled for synthesized tables, with weights.
_DIM_CHOICES = np.array([32, 48, 64, 96, 128])
_DIM_WEIGHTS = np.array([0.25, 0.2, 0.35, 0.12, 0.08])


@dataclass(frozen=True)
class TablePopulationSpec:
    """Parameters for one net's synthesized table population.

    Attributes:
        net: Net name that owns these tables.
        count: Number of tables.
        total_bytes: Target aggregate capacity (matched exactly).
        max_table_bytes: Cap on any single table (paper quotes the largest
            table per model).
        scope: USER or ITEM feature scaling.
        expected_ids_per_request: Target sum over the population of expected
            ids per request (Table II "estimated pooling factor" / 1000).
        mean_items: Model's mean request size; converts request-level id
            targets into per-item rates for ITEM-scoped features.
        size_sigma: Lognormal sigma of the table-size distribution (tail
            heaviness of Figure 5).
        pooling_sigma: Lognormal sigma of per-table pooling weights (drives
            the load imbalance of capacity-balanced sharding, Table II).
        activation_range: Range of per-table presence probabilities.
    """

    net: str
    count: int
    total_bytes: float
    max_table_bytes: float
    scope: FeatureScope
    expected_ids_per_request: float
    mean_items: float
    size_sigma: float = 1.1
    pooling_sigma: float = 1.2
    activation_range: tuple[float, float] = (0.6, 0.95)


def synthesize_tables(spec: TablePopulationSpec, seed: int) -> tuple[TableConfig, ...]:
    """Build one net's table population from its spec."""
    if spec.max_table_bytes * spec.count < spec.total_bytes:
        raise ValueError("max_table_bytes cap makes total_bytes infeasible")
    rng = substream(seed, "tables", spec.net)
    raw = rng.lognormal(mean=0.0, sigma=spec.size_sigma, size=spec.count)
    sizes = _normalized_sizes_from(raw, spec.total_bytes, spec.max_table_bytes)

    dims = rng.choice(_DIM_CHOICES, size=spec.count, p=_DIM_WEIGHTS / _DIM_WEIGHTS.sum())
    activations = rng.uniform(*spec.activation_range, size=spec.count)

    # Per-table pooling weights: heavy-tailed and independent of size, which
    # is what makes capacity-balanced shards unbalanced in load.
    weights = rng.lognormal(mean=0.0, sigma=spec.pooling_sigma, size=spec.count)
    expected_ids = weights * (spec.expected_ids_per_request / weights.sum())

    tables = []
    for index in range(spec.count):
        dim = int(dims[index])
        row_bytes = DType.FP32.row_bytes(dim)
        num_rows = max(1, int(round(sizes[index] / row_bytes)))
        per_presence = expected_ids[index] / activations[index]
        if spec.scope is FeatureScope.ITEM:
            per_presence /= spec.mean_items
        tables.append(
            TableConfig(
                name=f"{spec.net}_t{index:03d}",
                net=spec.net,
                num_rows=num_rows,
                dim=dim,
                dtype=DType.FP32,
                scope=spec.scope,
                activation_prob=float(activations[index]),
                mean_ids=float(per_presence),
            )
        )
    return tuple(tables)


def _normalized_sizes_from(raw: np.ndarray, total: float, cap: float) -> np.ndarray:
    """Rescale raw positive draws to ``total`` with per-entry cap."""
    sizes = raw * (total / raw.sum())
    for _ in range(64):
        over = sizes > cap
        if not over.any():
            return sizes
        excess = float((sizes[over] - cap).sum())
        sizes[over] = cap
        under = ~over
        if not under.any():
            return sizes
        sizes[under] += excess * sizes[under] / sizes[under].sum()
    raise RuntimeError("size redistribution failed to converge")


def dominant_table_population(
    net: str,
    dominant_bytes: float,
    dominant_dim: int,
    remainder_count: int,
    remainder_bytes: float,
    expected_ids_per_request: float,
    mean_items: float,
    seed: int,
) -> tuple[TableConfig, ...]:
    """DRM3-style population: one huge single-lookup table plus a tail.

    The dominant table models a user-id-keyed table: always present, exactly
    one id per request (paper: "the dominating table has a pooling factor of
    1"), so row-partitioning it across shards parallelizes no work.
    """
    row_bytes = DType.FP32.row_bytes(dominant_dim)
    dominant = TableConfig(
        name=f"{net}_dominant",
        net=net,
        num_rows=max(1, int(round(dominant_bytes / row_bytes))),
        dim=dominant_dim,
        scope=FeatureScope.USER,
        activation_prob=1.0,
        mean_ids=1.0,
        deterministic_ids=True,
    )
    spec = TablePopulationSpec(
        net=net,
        count=remainder_count,
        total_bytes=remainder_bytes,
        max_table_bytes=remainder_bytes,  # uncapped within the remainder
        scope=FeatureScope.USER,
        expected_ids_per_request=expected_ids_per_request - 1.0,
        mean_items=mean_items,
        size_sigma=0.9,
        pooling_sigma=0.9,
    )
    remainder = synthesize_tables(spec, seed)
    renamed = tuple(
        TableConfig(
            name=f"{net}_t{index:03d}",
            net=net,
            num_rows=table.num_rows,
            dim=table.dim,
            dtype=table.dtype,
            scope=table.scope,
            activation_prob=table.activation_prob,
            mean_ids=table.mean_ids,
        )
        for index, table in enumerate(remainder)
    )
    return (dominant,) + renamed

"""Model configuration types for DLRM-like recommendation models.

A model (paper Figure 2a) is described by:

* one or more **nets** executed sequentially per batch (the user net feeds
  the content/product net -- Section III-B3),
* a set of **embedding tables**, each owned by exactly one net, which
  dominate capacity (>97%), and
* a **request profile** describing how many candidate items a ranking
  request carries and how it is split into batches.

These configs are *metadata*: capacity, sparsity, and compute attributes at
full production scale.  Real numeric weights are only materialized for
reduced-scale correctness tests (see :mod:`repro.core.embedding`).
"""

from __future__ import annotations

import enum
import functools
from dataclasses import dataclass, field

import numpy as np

from repro.core.types import GIB, DType, OpCategory


class FeatureScope(enum.Enum):
    """How a sparse feature's lookups scale with request contents.

    USER features (engagement history, liked pages) are a property of the
    requesting user: their ids are sampled once per request, and -- because
    the user net re-executes for every batch of user-item pairs -- each
    batch performs the full set of lookups again.

    ITEM features are a property of each candidate item being ranked: ids
    scale with the number of items, and each batch only looks up ids for
    its own slice of items.
    """

    USER = "user"
    ITEM = "item"


@dataclass(frozen=True)
class TableConfig:
    """Static attributes of one embedding table.

    Attributes:
        name: Unique table name within the model.
        net: Name of the net whose sparse feature indexes this table.
        num_rows: Hash-bucket count (number of embedding rows).
        dim: Embedding vector dimension.
        dtype: Element storage type (FP32 uncompressed, per Section V-A).
        scope: USER or ITEM feature scaling (see :class:`FeatureScope`).
        activation_prob: Probability the feature is present in a request
            (USER scope) or per item (ITEM scope).  Absent features perform
            no lookups and are filled with zeros on the main shard; this
            input sparsity drives the serving overheads the paper measures.
        mean_ids: Mean number of ids when the feature is present (per
            request for USER scope, per item for ITEM scope).
        deterministic_ids: If True the id count is exactly ``mean_ids``
            (rounded) instead of Poisson -- e.g. a user-id-keyed table
            always performs exactly one lookup (paper: DRM3's dominant
            table has "a pooling factor of 1").
    """

    name: str
    net: str
    num_rows: int
    dim: int
    dtype: DType = DType.FP32
    scope: FeatureScope = FeatureScope.USER
    activation_prob: float = 1.0
    mean_ids: float = 1.0
    deterministic_ids: bool = False

    def __post_init__(self):
        if self.num_rows < 1:
            raise ValueError(f"table {self.name}: num_rows must be >= 1")
        if self.dim < 1:
            raise ValueError(f"table {self.name}: dim must be >= 1")
        if not 0.0 <= self.activation_prob <= 1.0:
            raise ValueError(f"table {self.name}: activation_prob out of [0, 1]")
        if self.mean_ids < 0:
            raise ValueError(f"table {self.name}: mean_ids must be >= 0")

    @functools.cached_property
    def nbytes(self) -> float:
        """Storage footprint of the full table (cached: the bin-packing
        strategies and payload sizing read it in tight loops)."""
        return self.num_rows * self.dtype.row_bytes(self.dim)

    def expected_ids_per_request(self, mean_items: float) -> float:
        """Expected lookups contributed by one request (one batch pass)."""
        per_presence = self.activation_prob * self.mean_ids
        if self.scope is FeatureScope.ITEM:
            return per_presence * mean_items
        return per_presence


@dataclass(frozen=True)
class NetConfig:
    """One sequential subnet of the model (e.g. user net, content net).

    ``dense_us_per_item`` / ``dense_us_fixed`` express the net's non-sparse
    operator cost on the SC-Large reference platform; the cost model scales
    them by relative clock.  ``op_mix`` apportions that dense cost across
    operator categories for Figure-4-style attribution and must sum to 1.
    """

    name: str
    dense_us_per_item: float
    dense_us_fixed: float
    op_mix: dict[OpCategory, float] = field(default_factory=dict)

    def __post_init__(self):
        if self.dense_us_per_item < 0 or self.dense_us_fixed < 0:
            raise ValueError(f"net {self.name}: dense costs must be >= 0")
        mix = self.op_mix or {OpCategory.DENSE: 1.0}
        if OpCategory.SPARSE in mix or OpCategory.RPC in mix:
            raise ValueError(f"net {self.name}: op_mix must only contain dense categories")
        total = sum(mix.values())
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"net {self.name}: op_mix sums to {total}, expected 1.0")
        object.__setattr__(self, "op_mix", dict(mix))


@dataclass(frozen=True)
class RequestProfile:
    """Distribution of ranking-request sizes and the batching default.

    Item counts are lognormal: production request sizes are long-tailed,
    which is what makes P99 compute several times P50 (paper Table III).
    """

    median_items: float
    sigma_items: float
    batch_size: int
    min_items: int = 1
    max_items: int = 100_000
    dense_feature_bytes: float = 512.0
    """Serialized dense-feature payload per item (drives request serde)."""

    def __post_init__(self):
        if self.median_items <= 0 or self.sigma_items < 0:
            raise ValueError("invalid item-count distribution")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")

    def sample_items(self, rng: np.random.Generator) -> int:
        """Sample the number of candidate items for one request."""
        items = self.median_items * float(np.exp(rng.normal(0.0, self.sigma_items)))
        return int(np.clip(round(items), self.min_items, self.max_items))

    def sample_items_bulk(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Vectorized :meth:`sample_items`: ``count`` draws in one RNG call.

        Must stay the element-wise image of the scalar path (one normal
        per request, round, clip) -- the vectorized request generator's
        byte-identity guarantee depends on this method and
        :meth:`sample_items` sharing one definition of the distribution.
        """
        raw = self.median_items * np.exp(rng.normal(0.0, self.sigma_items, size=count))
        return np.clip(np.round(raw), self.min_items, self.max_items)

    @property
    def mean_items(self) -> float:
        """Mean of the lognormal item count (before clipping)."""
        return self.median_items * float(np.exp(self.sigma_items**2 / 2))


@dataclass(frozen=True)
class ModelConfig:
    """Full description of one DLRM-like model."""

    name: str
    nets: tuple[NetConfig, ...]
    tables: tuple[TableConfig, ...]
    profile: RequestProfile
    dense_param_bytes: float = 0.5 * GIB

    def __post_init__(self):
        if not self.nets:
            raise ValueError("model requires at least one net")
        net_names = [net.name for net in self.nets]
        if len(set(net_names)) != len(net_names):
            raise ValueError("duplicate net names")
        table_names = [table.name for table in self.tables]
        if len(set(table_names)) != len(table_names):
            raise ValueError("duplicate table names")
        known = set(net_names)
        for table in self.tables:
            if table.net not in known:
                raise ValueError(f"table {table.name} references unknown net {table.net}")
        # Lookup indices: table()/net()/tables_for_net() sit on the serving
        # simulator's per-RPC hot path, so they must not scan.
        by_net: dict[str, tuple[TableConfig, ...]] = {name: () for name in net_names}
        for table in self.tables:
            by_net[table.net] += (table,)
        object.__setattr__(self, "_net_index", {net.name: net for net in self.nets})
        object.__setattr__(self, "_table_index", {t.name: t for t in self.tables})
        object.__setattr__(self, "_tables_by_net", by_net)

    # -- lookups ---------------------------------------------------------
    def net(self, name: str) -> NetConfig:
        try:
            return self._net_index[name]
        except KeyError:
            raise KeyError(f"no net named {name} in model {self.name}") from None

    def table(self, name: str) -> TableConfig:
        try:
            return self._table_index[name]
        except KeyError:
            raise KeyError(f"no table named {name} in model {self.name}") from None

    def tables_for_net(self, net_name: str) -> tuple[TableConfig, ...]:
        return self._tables_by_net.get(net_name, ())

    # -- capacity --------------------------------------------------------
    @property
    def sparse_bytes(self) -> float:
        return sum(table.nbytes for table in self.tables)

    @property
    def total_bytes(self) -> float:
        return self.sparse_bytes + self.dense_param_bytes

    @property
    def sparse_fraction(self) -> float:
        """Fraction of model capacity held in embedding tables."""
        return self.sparse_bytes / self.total_bytes

    @property
    def largest_table_bytes(self) -> float:
        return max(table.nbytes for table in self.tables)

    def expected_pooling_per_net(self) -> dict[str, float]:
        """Expected lookups per request, by net (one batch pass)."""
        mean_items = self.profile.mean_items
        totals = {net.name: 0.0 for net in self.nets}
        for table in self.tables:
            totals[table.net] += table.expected_ids_per_request(mean_items)
        return totals

"""The DRM1 / DRM2 / DRM3 model zoo (paper Section V-A).

Calibration targets, straight from the paper:

=========  =======  ========  ============  ==========================
attribute  DRM1     DRM2      DRM3          source
=========  =======  ========  ============  ==========================
capacity   194 GiB  138 GiB   200 GiB       Sec. V-A / Table II
tables     257      133       39            Sec. V-A
largest    3.6 GB   6.7 GB    178.8 GB      Sec. V-A / Fig. 5
nets       2        2         1             Sec. V-A
sparse op  9.7%     9.6%      3.1%          Fig. 4 (share of op time)
=========  =======  ========  ============  ==========================

DRM1's two nets split 72 tables / 33.58 GiB (user net, ~94% of pooling
work) versus 185 tables / 160.47 GiB (content net, ~6%) -- the Table II
NSBP 2-shard row.  DRM2 is architecturally similar with smaller requests;
DRM3 is a single net dominated by one single-lookup table.

Each factory accepts ``scale`` (proportionally shrinks capacity -- the
paper itself scaled tables down to fit one 256 GB server) and ``seed``.
"""

from __future__ import annotations

from typing import Callable

from repro.core.types import GIB, MIB, OpCategory
from repro.models.config import (
    FeatureScope,
    ModelConfig,
    NetConfig,
    RequestProfile,
)
from repro.models.synthesis import (
    TablePopulationSpec,
    dominant_table_population,
    synthesize_tables,
)

#: Operator-category mix of the non-sparse portion, per model (Figure 4).
#: DRM1/DRM2 are transform-heavy ("more complex structure evidenced by
#: additional tensor transform costs"); DRM3 is dominated by dense FCs.
_DRM12_OP_MIX = {
    OpCategory.DENSE: 0.52,
    OpCategory.MEMORY_TRANSFORMS: 0.16,
    OpCategory.FEATURE_TRANSFORMS: 0.14,
    OpCategory.ACTIVATIONS: 0.08,
    OpCategory.SCALE_CLIP: 0.05,
    OpCategory.FILL: 0.03,
    OpCategory.HASH: 0.02,
}

_DRM3_OP_MIX = {
    OpCategory.DENSE: 0.74,
    OpCategory.MEMORY_TRANSFORMS: 0.07,
    OpCategory.FEATURE_TRANSFORMS: 0.06,
    OpCategory.ACTIVATIONS: 0.08,
    OpCategory.SCALE_CLIP: 0.03,
    OpCategory.FILL: 0.01,
    OpCategory.HASH: 0.01,
}


def drm1(scale: float = 1.0, seed: int = 1001) -> ModelConfig:
    """DRM1: 257 tables, 194 GiB, two nets, the most compute-intensive."""
    profile = RequestProfile(
        median_items=220.0,
        sigma_items=0.85,
        batch_size=72,
        dense_feature_bytes=640.0,
    )
    user_spec = TablePopulationSpec(
        net="net1",
        count=72,
        total_bytes=scale * 33.58 * GIB,
        max_table_bytes=scale * 1.9 * GIB,
        scope=FeatureScope.USER,
        expected_ids_per_request=126.7,
        mean_items=profile.mean_items,
        size_sigma=1.0,
        pooling_sigma=1.1,
        activation_range=(0.65, 0.95),
    )
    content_spec = TablePopulationSpec(
        net="net2",
        count=185,
        total_bytes=scale * 160.47 * GIB,
        max_table_bytes=scale * 3.6 * GIB,
        scope=FeatureScope.ITEM,
        expected_ids_per_request=8.0,
        mean_items=profile.mean_items,
        size_sigma=1.25,
        pooling_sigma=1.3,
        activation_range=(0.02, 0.10),
    )
    nets = (
        NetConfig("net1", dense_us_per_item=1.9, dense_us_fixed=95.0, op_mix=_DRM12_OP_MIX),
        NetConfig("net2", dense_us_per_item=7.8, dense_us_fixed=150.0, op_mix=_DRM12_OP_MIX),
    )
    return ModelConfig(
        name="DRM1",
        nets=nets,
        tables=synthesize_tables(user_spec, seed) + synthesize_tables(content_spec, seed),
        profile=profile,
        dense_param_bytes=scale * 4.2 * GIB,
    )


def drm2(scale: float = 1.0, seed: int = 2002) -> ModelConfig:
    """DRM2: 133 tables, 138 GiB, similar to DRM1 with smaller requests."""
    profile = RequestProfile(
        median_items=110.0,
        sigma_items=0.8,
        batch_size=72,
        dense_feature_bytes=560.0,
    )
    user_spec = TablePopulationSpec(
        net="net1",
        count=48,
        total_bytes=scale * 25.6 * GIB,
        max_table_bytes=scale * 2.4 * GIB,
        scope=FeatureScope.USER,
        expected_ids_per_request=98.0,
        mean_items=profile.mean_items,
        size_sigma=1.0,
        pooling_sigma=1.1,
        activation_range=(0.65, 0.95),
    )
    content_spec = TablePopulationSpec(
        net="net2",
        count=85,
        total_bytes=scale * 112.4 * GIB,
        max_table_bytes=scale * 6.7 * GIB,
        scope=FeatureScope.ITEM,
        expected_ids_per_request=7.0,
        mean_items=profile.mean_items,
        size_sigma=1.2,
        pooling_sigma=1.25,
        activation_range=(0.03, 0.12),
    )
    nets = (
        NetConfig("net1", dense_us_per_item=1.7, dense_us_fixed=90.0, op_mix=_DRM12_OP_MIX),
        NetConfig("net2", dense_us_per_item=7.2, dense_us_fixed=140.0, op_mix=_DRM12_OP_MIX),
    )
    return ModelConfig(
        name="DRM2",
        nets=nets,
        tables=synthesize_tables(user_spec, seed) + synthesize_tables(content_spec, seed),
        profile=profile,
        dense_param_bytes=scale * 3.0 * GIB,
    )


def drm3(scale: float = 1.0, seed: int = 3003) -> ModelConfig:
    """DRM3: one net, 39 tables, one 178.8 GB single-lookup table.

    Requests are small enough to fit one batch at default batch size
    (Section VI-F: "its requests are typically small enough for only one
    batch per request"), and sparse operators are only ~3% of op time.
    """
    profile = RequestProfile(
        median_items=34.0,
        sigma_items=0.7,
        batch_size=72,
        dense_feature_bytes=480.0,
    )
    tables = dominant_table_population(
        net="net1",
        dominant_bytes=scale * 178.8 * GIB,
        dominant_dim=64,
        remainder_count=38,
        remainder_bytes=scale * 21.2 * GIB,
        expected_ids_per_request=36.0,
        mean_items=profile.mean_items,
        seed=seed,
    )
    nets = (
        NetConfig("net1", dense_us_per_item=11.0, dense_us_fixed=180.0, op_mix=_DRM3_OP_MIX),
    )
    return ModelConfig(
        name="DRM3",
        nets=nets,
        tables=tables,
        profile=profile,
        dense_param_bytes=scale * 150 * MIB,
    )


#: Registry of model factories, keyed by paper name.
MODEL_FACTORIES: dict[str, Callable[..., ModelConfig]] = {
    "DRM1": drm1,
    "DRM2": drm2,
    "DRM3": drm3,
}


def build(name: str, scale: float = 1.0) -> ModelConfig:
    """Build a zoo model by its paper name (``DRM1``/``DRM2``/``DRM3``)."""
    try:
        factory = MODEL_FACTORIES[name.upper()]
    except KeyError:
        raise KeyError(f"unknown model {name!r}; choose from {sorted(MODEL_FACTORIES)}")
    return factory(scale=scale)

"""Historical recommendation-model growth (paper Figure 1).

Figure 1 motivates the whole paper: over roughly three years, a significant
production recommendation model grew by an order of magnitude in both the
number of sparse features and total embedding capacity, outrunning
single-server DRAM.  The proprietary series is reproduced here as a
synthetic dataset with the same endpoints and growth character (smooth
multiplicative growth with mild step changes at model refreshes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.types import GIB


@dataclass(frozen=True)
class GrowthPoint:
    """One sampled point of the model-growth history."""

    quarter: str
    years_since_start: float
    num_sparse_features: int
    embedding_bytes: float


def growth_series(start_year: int = 2017, quarters: int = 13) -> tuple[GrowthPoint, ...]:
    """Synthesize the Figure-1 growth history.

    Both series grow ~10x across three years (the paper's observation),
    features from ~40 to ~400 and embedding capacity from ~20 GiB to
    ~200 GiB, with refresh-driven step bumps at fixed quarters.
    """
    points = []
    feature_start, feature_end = 40.0, 400.0
    bytes_start, bytes_end = 20.0 * GIB, 200.0 * GIB
    steps = {4: 1.25, 8: 1.30}  # model refreshes mid-history
    step_factor = float(np.prod(list(steps.values())))
    horizon = (quarters - 1) / 4.0
    feature_rate = (feature_end / feature_start / step_factor) ** (1.0 / horizon)
    bytes_rate = (bytes_end / bytes_start / step_factor) ** (1.0 / horizon)

    features, capacity = feature_start, bytes_start
    for quarter_index in range(quarters):
        years = quarter_index / 4.0
        if quarter_index in steps:
            features *= steps[quarter_index]
            capacity *= steps[quarter_index]
        year = start_year + quarter_index // 4
        points.append(
            GrowthPoint(
                quarter=f"{year}Q{quarter_index % 4 + 1}",
                years_since_start=years,
                num_sparse_features=int(round(features)),
                embedding_bytes=capacity,
            )
        )
        features *= feature_rate ** 0.25
        capacity *= bytes_rate ** 0.25
    return tuple(points)


def growth_factor(points: tuple[GrowthPoint, ...]) -> tuple[float, float]:
    """Return (feature growth x, capacity growth x) across the series."""
    first, last = points[0], points[-1]
    return (
        last.num_sparse_features / first.num_sparse_features,
        last.embedding_bytes / first.embedding_bytes,
    )

"""Model zoo: DLRM-like model configs calibrated to the paper's DRM1/2/3."""

from repro.models.config import (
    FeatureScope,
    ModelConfig,
    NetConfig,
    RequestProfile,
    TableConfig,
)
from repro.models.growth import GrowthPoint, growth_factor, growth_series
from repro.models.synthesis import (
    TablePopulationSpec,
    dominant_table_population,
    synthesize_tables,
)
from repro.models.zoo import MODEL_FACTORIES, build, drm1, drm2, drm3

__all__ = [
    "FeatureScope",
    "GrowthPoint",
    "MODEL_FACTORIES",
    "ModelConfig",
    "NetConfig",
    "RequestProfile",
    "TableConfig",
    "TablePopulationSpec",
    "build",
    "dominant_table_population",
    "drm1",
    "drm2",
    "drm3",
    "growth_factor",
    "growth_series",
    "synthesize_tables",
]
